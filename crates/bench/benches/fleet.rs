//! Fleet benchmark: SLO burn, shed rate and tail latency per routing
//! policy under heavy-tailed open-loop load, swept across arrival
//! rates through the simtime fleet simulator.
//!
//! ```sh
//! cargo bench --bench fleet              # full sweep
//! cargo bench --bench fleet -- --quick   # CI smoke: short sweep
//! ```
//!
//! Results land in `target/dlbench-reports/BENCH_fleet.json`: one row
//! per *(rate, routing policy, autoscale mode)*. The sweep runs in pure
//! sim-time with seeded bounded-Pareto arrivals and no wall-clock
//! fields, so the document is byte-identical across runs — check.sh
//! runs it twice and `cmp`s the output.

use dlbench_bench::BENCH_SEED;
use dlbench_fleet::{fleet_sweep_doc, RoutingPolicy, SimFleetConfig};
use dlbench_trace::Stopwatch;

/// The shared `target/dlbench-reports` directory, recovered from the
/// executable path exactly like the criterion facade does — cargo runs
/// bench binaries with the *package* root as cwd, so a relative
/// `target/` would land inside `crates/bench/`.
fn reports_dir() -> std::path::PathBuf {
    let from_exe = std::env::current_exe().ok().and_then(|exe| {
        let deps = exe.parent()?;
        if deps.file_name()? != "deps" {
            return None;
        }
        Some(deps.parent()?.parent()?.join("dlbench-reports"))
    });
    from_exe.unwrap_or_else(|| std::path::Path::new("target").join("dlbench-reports"))
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("fleet: bench");
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let (rates, requests): (&[f64], usize) = if quick {
        (&[1_000.0, 50_000.0, 1_000_000.0], 600)
    } else {
        (&[1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 4_000_000.0], 4_000)
    };
    let mut base = SimFleetConfig::new(0.0, requests);
    base.seed = BENCH_SEED;

    println!(
        "DLBench fleet sweep — {} replicas, max batch {}, target p99 {}ms, seed {:#x}, \
         {requests} requests per cell",
        base.replicas, base.max_batch, base.target_p99_ms, base.seed
    );
    let started = Stopwatch::start();
    let doc = fleet_sweep_doc(&base, rates, &RoutingPolicy::ALL, &[false, true]);

    if let Some(rows) = doc["rows"].as_array() {
        println!(
            "{:<12} {:>10} {:>6} {:>10} {:>10} {:>9} {:>9} {:>10} {:>8}",
            "policy",
            "rate_rps",
            "auto",
            "shed_rate",
            "slo_burn",
            "p99_ms",
            "batch",
            "replicas",
            "scaleups"
        );
        for row in rows {
            let p99 = match row["latency_ms"]["p99"].as_f64() {
                Some(v) => format!("{v:.2}"),
                None => "-".to_string(),
            };
            println!(
                "{:<12} {:>10} {:>6} {:>10.3} {:>10.3} {:>9} {:>9.2} {:>10} {:>8}",
                row["policy"].as_str().unwrap_or("?"),
                row["rate_rps"].as_f64().unwrap_or(0.0) as u64,
                if matches!(row["autoscale"], dlbench_json::JsonValue::Bool(true)) {
                    "on"
                } else {
                    "off"
                },
                row["shed_rate"].as_f64().unwrap_or(0.0),
                row["slo_burn"].as_f64().unwrap_or(0.0),
                p99,
                row["mean_batch"].as_f64().unwrap_or(0.0),
                row["replicas_peak"].as_f64().unwrap_or(0.0) as u64,
                row["scale_ups"].as_f64().unwrap_or(0.0) as u64,
            );
        }
    }

    let out_dir = reports_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("BENCH_fleet.json");
    match std::fs::write(&path, doc.pretty() + "\n") {
        Ok(()) => {
            println!("done in {:.1}s; rows written to {}", started.elapsed_s(), path.display())
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
