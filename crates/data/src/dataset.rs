//! In-memory labelled dataset (image grids or token sequences).

use crate::stats::DatasetStats;
use dlbench_tensor::Tensor;

/// Which reference dataset a generated set stands in for.
///
/// `Ord` follows the paper's presentation order (MNIST first) so
/// keyed collections iterate deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetKind {
    /// MNIST stand-in (grayscale, sparse, low entropy).
    Mnist,
    /// CIFAR-10 stand-in (RGB, dense, high entropy).
    Cifar10,
    /// IMDB sentiment stand-in (token-id sequences, two classes) — the
    /// suite's text-workload axis.
    Imdb,
}

impl DatasetKind {
    /// Channel count of the reference data.
    pub fn channels(&self) -> usize {
        match self {
            DatasetKind::Mnist => 1,
            DatasetKind::Cifar10 => 3,
            DatasetKind::Imdb => 1,
        }
    }

    /// Native extent of the reference data: image side length for the
    /// image datasets (28 / 32), sequence length for IMDB (256 tokens).
    pub fn native_size(&self) -> usize {
        match self {
            DatasetKind::Mnist => 28,
            DatasetKind::Cifar10 => 32,
            DatasetKind::Imdb => 256,
        }
    }

    /// Reference training-set size (60,000 / 50,000 / 25,000).
    pub fn paper_train_samples(&self) -> usize {
        match self {
            DatasetKind::Mnist => 60_000,
            DatasetKind::Cifar10 => 50_000,
            DatasetKind::Imdb => 25_000,
        }
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        match self {
            DatasetKind::Mnist | DatasetKind::Cifar10 => 10,
            DatasetKind::Imdb => 2,
        }
    }

    /// Whether samples are token-id sequences rather than image grids.
    pub fn is_text(&self) -> bool {
        matches!(self, DatasetKind::Imdb)
    }

    /// Display name matching the source material.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Mnist => "MNIST",
            DatasetKind::Cifar10 => "CIFAR-10",
            DatasetKind::Imdb => "IMDB",
        }
    }
}

/// A structured reason a dataset could not be constructed. Token
/// validity is enforced *here*, at construction, so the lookup kernels
/// downstream (`dlbench_nn::Embedding`) never have to panic on bad
/// data — they clamp, and this error is the only place invalid ids
/// surface.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// A token value is not a finite integer.
    TokenNotIntegral {
        /// Flat position of the offending value.
        index: usize,
        /// The offending value.
        value: f32,
    },
    /// A token id falls outside `[0, vocab)`.
    TokenOutOfRange {
        /// Flat position of the offending value.
        index: usize,
        /// The offending value.
        value: f32,
        /// Vocabulary size the id must stay below.
        vocab: usize,
    },
    /// The token tensor is not `[N, 1, L, 1]`.
    BadSequenceShape {
        /// The shape that was provided.
        shape: Vec<usize>,
    },
    /// Label count disagrees with the sample count.
    LabelCountMismatch {
        /// Samples in the tensor.
        samples: usize,
        /// Labels provided.
        labels: usize,
    },
    /// A label is not below `num_classes`.
    LabelOutOfRange {
        /// Index of the offending label.
        index: usize,
        /// The offending label.
        label: usize,
        /// Exclusive upper bound.
        num_classes: usize,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::TokenNotIntegral { index, value } => {
                write!(f, "token at position {index} is not a finite integer: {value}")
            }
            DatasetError::TokenOutOfRange { index, value, vocab } => {
                write!(f, "token at position {index} is out of range: {value} (vocab {vocab})")
            }
            DatasetError::BadSequenceShape { shape } => {
                write!(f, "token tensor must be [N, 1, L, 1], got {shape:?}")
            }
            DatasetError::LabelCountMismatch { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            DatasetError::LabelOutOfRange { index, label, num_classes } => {
                write!(f, "label {label} at index {index} not below {num_classes}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labelled dataset held in memory: samples `[N, C, H, W]` plus
/// integer class labels. Image datasets store intensities in `[0, 1]`
/// with `H == W`; the text dataset stores token ids as `[N, 1, L, 1]`
/// (one id per sequence position, validated at construction).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which reference dataset this stands in for.
    pub kind: DatasetKind,
    /// Sample tensor `[N, C, H, W]`.
    pub images: Tensor,
    /// Class label per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Constructs a token-sequence dataset, validating every token id
    /// against `vocab` and every label against `num_classes`. This is
    /// the only door sequence data enters through, so a malformed id is
    /// a structured [`DatasetError`] here — never a panic in a kernel.
    pub fn sequences(
        kind: DatasetKind,
        tokens: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
        vocab: usize,
    ) -> Result<Dataset, DatasetError> {
        let shape = tokens.shape();
        if shape.len() != 4 || shape[1] != 1 || shape[3] != 1 {
            return Err(DatasetError::BadSequenceShape { shape: shape.to_vec() });
        }
        if shape[0] != labels.len() {
            return Err(DatasetError::LabelCountMismatch {
                samples: shape[0],
                labels: labels.len(),
            });
        }
        for (index, &value) in tokens.data().iter().enumerate() {
            if !value.is_finite() || value.fract() != 0.0 {
                return Err(DatasetError::TokenNotIntegral { index, value });
            }
            if value < 0.0 || value >= vocab as f32 {
                return Err(DatasetError::TokenOutOfRange { index, value, vocab });
            }
        }
        for (index, &label) in labels.iter().enumerate() {
            if label >= num_classes {
                return Err(DatasetError::LabelOutOfRange { index, label, num_classes });
            }
        }
        Ok(Dataset { kind, images: tokens, labels, num_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Primary sample extent: image side length for image data,
    /// sequence length for token data (the `H` axis either way).
    pub fn size(&self) -> usize {
        self.images.shape()[2]
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.images.shape()[1]
    }

    /// The full per-sample shape (`[C, H, W]`).
    pub fn sample_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// Splits off the first `n` samples as one dataset and the rest as
    /// another (generators already randomize order, so a prefix split is
    /// unbiased). The per-sample shape is carried over verbatim, so
    /// non-square sample shapes (token sequences) survive the split.
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let sample: usize = self.sample_shape().iter().product();
        let head =
            Tensor::from_vec(&self.batch_shape(n), self.images.data()[..n * sample].to_vec())
                .expect("head slice is consistent");
        let tail_n = self.len() - n;
        let tail =
            Tensor::from_vec(&self.batch_shape(tail_n), self.images.data()[n * sample..].to_vec())
                .expect("tail slice is consistent");
        (
            Dataset {
                kind: self.kind,
                images: head,
                labels: self.labels[..n].to_vec(),
                num_classes: self.num_classes,
            },
            Dataset {
                kind: self.kind,
                images: tail,
                labels: self.labels[n..].to_vec(),
                num_classes: self.num_classes,
            },
        )
    }

    /// Gathers a batch of samples at the given indices, preserving the
    /// per-sample shape.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let sample: usize = self.sample_shape().iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "gather index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        let images = Tensor::from_vec(&self.batch_shape(indices.len()), data)
            .expect("gathered batch is consistent");
        (images, labels)
    }

    fn batch_shape(&self, n: usize) -> Vec<usize> {
        let mut shape = self.images.shape().to_vec();
        shape[0] = n;
        shape
    }

    /// Characterization statistics (entropy, sparsity, channel moments)
    /// used by the benchmark's dataset-analysis metric.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::measure(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let images = Tensor::arange(2 * 2 * 2).reshape(&[2, 1, 2, 2]).unwrap();
        Dataset { kind: DatasetKind::Mnist, images, labels: vec![3, 7], num_classes: 10 }
    }

    fn toy_seq() -> Dataset {
        let tokens = Tensor::from_vec(&[2, 1, 3, 1], vec![0.0, 2.0, 1.0, 3.0, 3.0, 0.0]).unwrap();
        Dataset::sequences(DatasetKind::Imdb, tokens, vec![0, 1], 2, 4).unwrap()
    }

    #[test]
    fn split_partitions_samples() {
        let d = toy();
        let (a, b) = d.split(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.labels, vec![3]);
        assert_eq!(b.labels, vec![7]);
        assert_eq!(b.images.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn gather_reorders() {
        let d = toy();
        let (imgs, labels) = d.gather(&[1, 0]);
        assert_eq!(labels, vec![7, 3]);
        assert_eq!(imgs.shape(), &[2, 1, 2, 2]);
        assert_eq!(&imgs.data()[..4], &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn split_and_gather_preserve_sequence_shape() {
        // Regression: split/gather used to rebuild `[n, c, size, size]`
        // square shapes, silently corrupting non-square [N, 1, L, 1]
        // token data.
        let d = toy_seq();
        let (a, b) = d.split(1);
        assert_eq!(a.images.shape(), &[1, 1, 3, 1]);
        assert_eq!(b.images.shape(), &[1, 1, 3, 1]);
        assert_eq!(b.images.data(), &[3.0, 3.0, 0.0]);
        let (batch, labels) = d.gather(&[1, 0, 1]);
        assert_eq!(batch.shape(), &[3, 1, 3, 1]);
        assert_eq!(labels, vec![1, 0, 1]);
        assert_eq!(&batch.data()[..3], &[3.0, 3.0, 0.0]);
    }

    #[test]
    fn sequences_reject_bad_tokens_with_structured_errors() {
        let mk = |vals: Vec<f32>| Tensor::from_vec(&[1, 1, 3, 1], vals).unwrap();
        let err = Dataset::sequences(DatasetKind::Imdb, mk(vec![0.0, 5.0, 1.0]), vec![0], 2, 4)
            .unwrap_err();
        assert_eq!(err, DatasetError::TokenOutOfRange { index: 1, value: 5.0, vocab: 4 });
        let err = Dataset::sequences(DatasetKind::Imdb, mk(vec![0.0, -1.0, 1.0]), vec![0], 2, 4)
            .unwrap_err();
        assert_eq!(err, DatasetError::TokenOutOfRange { index: 1, value: -1.0, vocab: 4 });
        let err = Dataset::sequences(DatasetKind::Imdb, mk(vec![0.0, 1.5, 1.0]), vec![0], 2, 4)
            .unwrap_err();
        assert_eq!(err, DatasetError::TokenNotIntegral { index: 1, value: 1.5 });
        let err =
            Dataset::sequences(DatasetKind::Imdb, mk(vec![0.0, f32::NAN, 1.0]), vec![0], 2, 4)
                .unwrap_err();
        assert!(matches!(err, DatasetError::TokenNotIntegral { index: 1, .. }));
        let err = Dataset::sequences(DatasetKind::Imdb, mk(vec![0.0, 1.0, 1.0]), vec![2], 2, 4)
            .unwrap_err();
        assert_eq!(err, DatasetError::LabelOutOfRange { index: 0, label: 2, num_classes: 2 });
        // Errors render human-readably.
        let text = format!("{}", DatasetError::TokenOutOfRange { index: 7, value: 9.0, vocab: 4 });
        assert!(text.contains("position 7") && text.contains("vocab 4"), "{text}");
    }

    #[test]
    fn sequences_reject_bad_shapes() {
        let square = Tensor::zeros(&[1, 1, 2, 2]);
        let err = Dataset::sequences(DatasetKind::Imdb, square, vec![0], 2, 4).unwrap_err();
        assert!(matches!(err, DatasetError::BadSequenceShape { .. }));
        let tokens = Tensor::zeros(&[2, 1, 3, 1]);
        let err = Dataset::sequences(DatasetKind::Imdb, tokens, vec![0], 2, 4).unwrap_err();
        assert_eq!(err, DatasetError::LabelCountMismatch { samples: 2, labels: 1 });
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(DatasetKind::Mnist.channels(), 1);
        assert_eq!(DatasetKind::Cifar10.channels(), 3);
        assert_eq!(DatasetKind::Imdb.channels(), 1);
        assert_eq!(DatasetKind::Mnist.native_size(), 28);
        assert_eq!(DatasetKind::Cifar10.native_size(), 32);
        assert_eq!(DatasetKind::Imdb.native_size(), 256);
        assert_eq!(DatasetKind::Mnist.paper_train_samples(), 60_000);
        assert_eq!(DatasetKind::Cifar10.paper_train_samples(), 50_000);
        assert_eq!(DatasetKind::Imdb.paper_train_samples(), 25_000);
        assert_eq!(DatasetKind::Imdb.num_classes(), 2);
        assert!(DatasetKind::Imdb.is_text());
        assert!(!DatasetKind::Mnist.is_text());
    }
}
