//! `im2col`/`col2im` lowering for convolution layers.
//!
//! Convolution forward passes are computed as a GEMM over an unrolled
//! patch matrix; the backward pass to inputs uses the adjoint `col2im`
//! scatter. This mirrors how Caffe (explicitly) and the cuDNN-backed
//! frameworks (implicitly) lower convolutions, and it is the layout the
//! cost model charges for.

/// Geometry of a 2-D convolution: input plane size, kernel, stride and
/// symmetric zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both axes).
    pub stride: usize,
    /// Symmetric zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Output height after convolving.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad).saturating_sub(self.kernel_h) / self.stride + 1
    }

    /// Output width after convolving.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad).saturating_sub(self.kernel_w) / self.stride + 1
    }

    /// Rows of the patch matrix (`C * kh * kw`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the patch matrix (`out_h * out_w`).
    pub fn out_plane(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unrolls one image (`[C, H, W]` in `input`) into a patch matrix of
/// shape `[patch_len, out_h*out_w]` stored row-major in `cols`.
///
/// # Panics
///
/// Panics (debug assertions) if slice lengths disagree with `geo`.
pub fn im2col(geo: &Conv2dGeometry, input: &[f32], cols: &mut [f32]) {
    let _span = dlbench_trace::span(dlbench_trace::Category::Kernel, "im2col");
    let (oh, ow) = (geo.out_h(), geo.out_w());
    debug_assert_eq!(input.len(), geo.in_channels * geo.in_h * geo.in_w);
    debug_assert_eq!(cols.len(), geo.patch_len() * oh * ow);
    let mut row = 0usize;
    for c in 0..geo.in_channels {
        let plane = &input[c * geo.in_h * geo.in_w..(c + 1) * geo.in_h * geo.in_w];
        for kh in 0..geo.kernel_h {
            for kw in 0..geo.kernel_w {
                let out_row = &mut cols[row * oh * ow..(row + 1) * oh * ow];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geo.stride + kh) as isize - geo.pad as isize;
                    if iy < 0 || iy >= geo.in_h as isize {
                        for _ in 0..ow {
                            out_row[idx] = 0.0;
                            idx += 1;
                        }
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geo.stride + kw) as isize - geo.pad as isize;
                        out_row[idx] = if ix < 0 || ix >= geo.in_w as isize {
                            0.0
                        } else {
                            plane[iy * geo.in_w + ix as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters the patch-matrix gradient `cols` back
/// into an image gradient `grad` (`[C, H, W]`), accumulating overlaps.
///
/// `grad` must be zeroed by the caller if a pure gradient (rather than
/// accumulation) is desired.
pub fn col2im(geo: &Conv2dGeometry, cols: &[f32], grad: &mut [f32]) {
    let _span = dlbench_trace::span(dlbench_trace::Category::Kernel, "col2im");
    let (oh, ow) = (geo.out_h(), geo.out_w());
    debug_assert_eq!(grad.len(), geo.in_channels * geo.in_h * geo.in_w);
    debug_assert_eq!(cols.len(), geo.patch_len() * oh * ow);
    let mut row = 0usize;
    for c in 0..geo.in_channels {
        let plane_off = c * geo.in_h * geo.in_w;
        for kh in 0..geo.kernel_h {
            for kw in 0..geo.kernel_w {
                let col_row = &cols[row * oh * ow..(row + 1) * oh * ow];
                let mut idx = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geo.stride + kh) as isize - geo.pad as isize;
                    if iy < 0 || iy >= geo.in_h as isize {
                        idx += ow;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geo.stride + kw) as isize - geo.pad as isize;
                        if ix >= 0 && ix < geo.in_w as isize {
                            grad[plane_off + iy * geo.in_w + ix as usize] += col_row[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
        Conv2dGeometry {
            in_channels: c,
            in_h: h,
            in_w: w,
            kernel_h: k,
            kernel_w: k,
            stride: s,
            pad: p,
        }
    }

    #[test]
    fn output_dims_match_lenet_expectations() {
        // Caffe LeNet on 28x28: conv5 no pad -> 24, TF SAME pad=2 -> 28.
        assert_eq!(geo(1, 28, 28, 5, 1, 0).out_h(), 24);
        assert_eq!(geo(1, 28, 28, 5, 1, 2).out_h(), 28);
        assert_eq!(geo(3, 32, 32, 5, 1, 2).out_w(), 32);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, no pad: patch matrix equals the image itself.
        let g = geo(1, 3, 3, 1, 1, 0);
        let input: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let mut cols = vec![0.0f32; g.patch_len() * g.out_plane()];
        im2col(&g, &input, &mut cols);
        assert_eq!(cols, input);
    }

    #[test]
    fn im2col_known_patch() {
        let g = geo(1, 3, 3, 2, 1, 0);
        let input: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let mut cols = vec![0.0f32; g.patch_len() * g.out_plane()];
        im2col(&g, &input, &mut cols);
        // rows are kernel taps, columns are the 4 output positions.
        assert_eq!(&cols[0..4], &[1.0, 2.0, 4.0, 5.0]); // top-left tap
        assert_eq!(&cols[12..16], &[5.0, 6.0, 8.0, 9.0]); // bottom-right tap
    }

    #[test]
    fn padding_zero_fills() {
        let g = geo(1, 2, 2, 3, 1, 1);
        let input = [1.0f32, 2.0, 3.0, 4.0];
        let mut cols = vec![0.0f32; g.patch_len() * g.out_plane()];
        im2col(&g, &input, &mut cols);
        // First tap (kh=0,kw=0) at output (0,0) reads input(-1,-1) = 0.
        assert_eq!(cols[0], 0.0);
        // Center tap (kh=1,kw=1) reproduces the image.
        let center = 4 * g.out_plane();
        assert_eq!(&cols[center..center + 4], &input);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        use crate::SeededRng;
        let g = geo(2, 5, 5, 3, 2, 1);
        let mut rng = SeededRng::new(5);
        let x: Vec<f32> =
            (0..g.in_channels * g.in_h * g.in_w).map(|_| rng.normal(0.0, 1.0)).collect();
        let y: Vec<f32> =
            (0..g.patch_len() * g.out_plane()).map(|_| rng.normal(0.0, 1.0)).collect();
        let mut cols = vec![0.0f32; y.len()];
        im2col(&g, &x, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut grad = vec![0.0f32; x.len()];
        col2im(&g, &y, &mut grad);
        let rhs: f32 = x.iter().zip(&grad).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
