//! The span recorder: per-thread ring buffers behind a global
//! registry, armed and disarmed at runtime.
//!
//! Fast path: every instrumentation site starts with a relaxed load of
//! one global `AtomicBool`. When tracing is off ([`TraceConfig::Off`],
//! the default) that load and a branch are the entire cost — no locks,
//! no clock reads, no allocation — so instrumented kernels stay within
//! noise of uninstrumented ones (gated by `benches/trace.rs`).
//!
//! When armed, each recording thread lazily registers a shard — a
//! bounded ring buffer (oldest events drop first) wrapped in its own
//! mutex, so recording threads never contend with each other. A
//! thread-local drop guard retires the shard's events into a global
//! completed buffer when the thread exits; the scoped worker threads
//! `dlbench_tensor::par` spawns per call are exactly this short-lived,
//! and their events must outlive them.

use crate::clock::monotonic_ns;
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Runtime tracing configuration — a switch, not a cargo feature, so
/// one binary serves both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceConfig {
    /// Recording disarmed (the default). Instrumentation sites cost
    /// one relaxed atomic load.
    Off,
    /// Recording armed with the given per-thread ring capacity.
    On {
        /// Maximum events each thread's ring holds before the oldest
        /// drop (counted by [`dropped_events`]).
        per_thread_capacity: usize,
    },
}

impl TraceConfig {
    /// Default per-thread ring capacity (events).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Recording armed at the default capacity.
    pub fn on() -> Self {
        TraceConfig::On { per_thread_capacity: Self::DEFAULT_CAPACITY }
    }
}

/// What subsystem a span belongs to. Ordered roughly outermost-first,
/// which is also how profile reports group rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// `BenchmarkRunner` cell lifecycle.
    Runner,
    /// Trainer epoch / iteration / evaluation boundaries.
    Train,
    /// `dlbench-dist` collective operations (allreduce, shard_wait,
    /// broadcast, ring hops).
    Dist,
    /// `dlbench-nn` layer forward/backward.
    Layer,
    /// `dlbench_tensor` compute kernels (gemm, im2col, maxpool, …).
    Kernel,
    /// `dlbench-serve` request path.
    Serve,
    /// `dlbench-fleet` replica fleet: routing, scaling, promotion.
    Fleet,
}

impl Category {
    /// Stable lowercase label used in exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::Runner => "runner",
            Category::Train => "train",
            Category::Dist => "dist",
            Category::Layer => "layer",
            Category::Kernel => "kernel",
            Category::Serve => "serve",
            Category::Fleet => "fleet",
        }
    }
}

/// Payload of one recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A nested RAII span recorded on the thread that ran it.
    Span {
        /// Start, nanoseconds since the trace epoch.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
        /// Nesting depth on the recording thread (0 = outermost).
        depth: u32,
        /// Estimated floating-point operations performed inside the
        /// span (0 when unknown); joined against `dlbench-simtime`
        /// cost estimates by [`crate::ProfileReport`].
        flops: u64,
    },
    /// A detached measured interval (e.g. a request's queue wait)
    /// whose start predates the recording site; exported as a Chrome
    /// async event so it never breaks same-track span nesting.
    Interval {
        /// Start, nanoseconds since the trace epoch.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// A sampled counter value (e.g. queue depth).
    Counter {
        /// Sample time, nanoseconds since the trace epoch.
        at_ns: u64,
        /// Sampled value.
        value: f64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (span/counter label).
    pub name: Cow<'static, str>,
    /// Subsystem category.
    pub cat: Category,
    /// Small sequential id of the recording thread (1-based; assigned
    /// in registration order, stable for the thread's lifetime).
    pub tid: u64,
    /// Global record sequence number — a total order over all events
    /// from all threads, assigned when the event is recorded.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// Start timestamp (sample time for counters).
    pub fn start_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { start_ns, .. } | EventKind::Interval { start_ns, .. } => start_ns,
            EventKind::Counter { at_ns, .. } => at_ns,
        }
    }

    /// End timestamp (== start for counters).
    pub fn end_ns(&self) -> u64 {
        match self.kind {
            EventKind::Span { start_ns, dur_ns, .. } | EventKind::Interval { start_ns, dur_ns } => {
                start_ns + dur_ns
            }
            EventKind::Counter { at_ns, .. } => at_ns,
        }
    }

    /// Whether this is a nested RAII span (not an interval/counter).
    pub fn is_span(&self) -> bool {
        matches!(self.kind, EventKind::Span { .. })
    }
}

// --- global state -----------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(TraceConfig::DEFAULT_CAPACITY);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

/// Retired events are capped at this multiple of the per-thread
/// capacity so a long armed run with churning worker threads cannot
/// grow without bound.
const RETIRED_CAP_FACTOR: usize = 4;

#[derive(Default)]
struct Registry {
    live: Vec<Arc<Mutex<Shard>>>,
    retired: VecDeque<Event>,
    dropped: u64,
}

struct Shard {
    events: VecDeque<Event>,
    dropped: u64,
}

impl Shard {
    fn push(&mut self, event: Event, cap: usize) {
        if self.events.len() >= cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

fn registry() -> MutexGuard<'static, Registry> {
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct LocalCtx {
    shard: Arc<Mutex<Shard>>,
    tid: u64,
}

impl LocalCtx {
    fn register() -> Self {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let shard = Arc::new(Mutex::new(Shard { events: VecDeque::new(), dropped: 0 }));
        registry().live.push(Arc::clone(&shard));
        Self { shard, tid }
    }
}

impl Drop for LocalCtx {
    // Retire this thread's events into the global completed buffer so
    // short-lived scoped workers lose nothing.
    fn drop(&mut self) {
        let mut reg = registry();
        {
            let mut shard = self.shard.lock().unwrap_or_else(|e| e.into_inner());
            reg.dropped += shard.dropped;
            let events: Vec<Event> = shard.events.drain(..).collect();
            reg.retired.extend(events);
        }
        reg.live.retain(|s| !Arc::ptr_eq(s, &self.shard));
        let cap = CAPACITY.load(Ordering::Relaxed).saturating_mul(RETIRED_CAP_FACTOR).max(1);
        while reg.retired.len() > cap {
            reg.retired.pop_front();
            reg.dropped += 1;
        }
    }
}

thread_local! {
    static LOCAL: LocalCtx = LocalCtx::register();
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn push_event(name: Cow<'static, str>, cat: Category, kind: EventKind) {
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let cap = CAPACITY.load(Ordering::Relaxed).max(1);
    // try_with: during thread teardown the TLS slot may already be
    // gone; the event is lost, never a panic.
    let _ = LOCAL.try_with(|ctx| {
        let event = Event { name, cat, tid: ctx.tid, seq, kind };
        ctx.shard.lock().unwrap_or_else(|e| e.into_inner()).push(event, cap);
    });
}

// --- public API -------------------------------------------------------

/// Arms or disarms recording. Arming does not clear previously
/// recorded events (use [`clear`]); disarming leaves them readable via
/// [`take_events`].
pub fn configure(config: TraceConfig) {
    match config {
        TraceConfig::Off => ENABLED.store(false, Ordering::SeqCst),
        TraceConfig::On { per_thread_capacity } => {
            CAPACITY.store(per_thread_capacity.max(1), Ordering::SeqCst);
            ENABLED.store(true, Ordering::SeqCst);
        }
    }
}

/// Whether recording is armed. This is the fast-path check every
/// instrumentation site performs (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether recording is armed (alias of [`enabled`] reading as a
/// configuration query at call sites).
#[inline]
pub fn is_configured_on() -> bool {
    enabled()
}

/// Opens a RAII span with a static name. Inert (and near-free) when
/// tracing is off. The event is recorded when the guard drops.
#[inline]
pub fn span(cat: Category, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard::begin(Cow::Borrowed(name), cat, 0)
}

/// Opens a RAII span carrying a FLOP estimate for the work inside it.
#[inline]
pub fn span_flops(cat: Category, name: &'static str, flops: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard::begin(Cow::Borrowed(name), cat, flops)
}

/// Opens a RAII span with a runtime-built name. The name is only
/// materialized by the caller, so gate `format!` on [`enabled`].
pub fn span_owned(cat: Category, name: String) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard::begin(Cow::Owned(name), cat, 0)
}

/// Owned-name variant of [`span_flops`].
pub fn span_owned_flops(cat: Category, name: String, flops: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard::begin(Cow::Owned(name), cat, flops)
}

/// Records a detached measured interval whose start lies in the past
/// (e.g. a request's queue wait, measured from its enqueue timestamp).
/// Exported as a Chrome async event so it cannot break the recording
/// thread's span nesting.
pub fn record_span(cat: Category, name: &'static str, start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    let dur_ns = end_ns.saturating_sub(start_ns);
    push_event(Cow::Borrowed(name), cat, EventKind::Interval { start_ns, dur_ns });
}

/// Records a monotonic counter sample (e.g. queue depth).
pub fn counter(cat: Category, name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    push_event(Cow::Borrowed(name), cat, EventKind::Counter { at_ns: monotonic_ns(), value });
}

/// RAII span guard: records one complete event when dropped. Inert
/// when created while tracing was off.
#[must_use = "a span measures the scope it is bound to; bind it with `let _span = …`"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: Cow<'static, str>,
    cat: Category,
    start_ns: u64,
    depth: u32,
    flops: u64,
}

impl SpanGuard {
    fn begin(name: Cow<'static, str>, cat: Category, flops: u64) -> Self {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Self { active: Some(ActiveSpan { name, cat, start_ns: monotonic_ns(), depth, flops }) }
    }

    /// Attaches (or replaces) the span's FLOP estimate after creation,
    /// for sites that only learn the work size mid-span.
    pub fn set_flops(&mut self, flops: u64) {
        if let Some(a) = &mut self.active {
            a.flops = flops;
        }
    }

    /// Whether this guard will record an event on drop.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let end_ns = monotonic_ns();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        // Recorded even if tracing was disarmed mid-span: the guard
        // was armed at creation, and keeping it balances depth
        // bookkeeping and loses no measured work.
        push_event(
            a.name,
            a.cat,
            EventKind::Span {
                start_ns: a.start_ns,
                dur_ns: end_ns.saturating_sub(a.start_ns),
                depth: a.depth,
                flops: a.flops,
            },
        );
    }
}

/// Drains every recorded event — live shards and retired buffers —
/// sorted by the global record sequence. Events recorded concurrently
/// with the drain may land in the next drain.
pub fn take_events() -> Vec<Event> {
    let mut reg = registry();
    let mut out: Vec<Event> = reg.retired.drain(..).collect();
    let live: Vec<Arc<Mutex<Shard>>> = reg.live.iter().map(Arc::clone).collect();
    drop(reg);
    for shard in live {
        let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(shard.events.drain(..));
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Discards all recorded events and resets the ring-overflow counter.
pub fn clear() {
    let mut reg = registry();
    reg.retired.clear();
    reg.dropped = 0;
    let live: Vec<Arc<Mutex<Shard>>> = reg.live.iter().map(Arc::clone).collect();
    drop(reg);
    for shard in live {
        let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        shard.events.clear();
        shard.dropped = 0;
    }
}

/// Events lost to ring-buffer overflow since the last [`clear`]. A
/// non-zero value means the per-thread capacity was too small for the
/// traced run.
pub fn dropped_events() -> u64 {
    let reg = registry();
    let mut total = reg.dropped;
    let live: Vec<Arc<Mutex<Shard>>> = reg.live.iter().map(Arc::clone).collect();
    drop(reg);
    for shard in live {
        total += shard.lock().unwrap_or_else(|e| e.into_inner()).dropped;
    }
    total
}
