//! # dlbench-json
//!
//! A small, dependency-free JSON value type with a pretty writer and a
//! strict parser. The build environment has no reachable cargo
//! registry, so report serialization cannot rely on `serde_json`; this
//! crate covers exactly what the suite needs: serializing
//! [`ExperimentReport`](https://docs.rs)-shaped data and re-parsing it
//! in integration tests.
//!
//! The pretty writer mirrors `serde_json::to_string_pretty`: two-space
//! indentation and `": "` key separators, so downstream consumers (and
//! the suite's own golden assertions) see the familiar shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup for objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object members as a map view (for order-insensitive comparisons).
    pub fn as_map(&self) -> Option<BTreeMap<&str, &JsonValue>> {
        match self {
            JsonValue::Object(members) => {
                Some(members.iter().map(|(k, v)| (k.as_str(), v)).collect())
            }
            _ => None,
        }
    }

    /// Serializes with two-space indentation (serde_json pretty style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => out.push_str(&write_number(*n)),
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// Indexing sugar mirroring `serde_json::Value`: `value["key"]`.
///
/// # Panics
///
/// Panics if the value is not an object containing `key` (matching the
/// strictness the integration tests want — a missing field is a bug).
impl std::ops::Index<&str> for JsonValue {
    type Output = JsonValue;

    fn index(&self, key: &str) -> &JsonValue {
        self.get(key).unwrap_or_else(|| panic!("no member `{key}` in {self:?}"))
    }
}

impl PartialEq<&str> for JsonValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for JsonValue {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

impl From<f32> for JsonValue {
    /// Widens through the shortest decimal representation so an `f32`
    /// like `99.22` serializes as `99.22`, not `99.22000122070312`.
    fn from(n: f32) -> Self {
        JsonValue::Number(format!("{n}").parse().unwrap_or(n as f64))
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Number(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Formats a finite number the way serde_json does (`1.0` stays `1.0`
/// via Rust's shortest-roundtrip float formatting; integers print bare).
fn write_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no non-finite literals; null matches serde_json's
        // lossy modes and keeps the output parseable.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion to a [`JsonValue`] tree (the writer-side trait reports
/// implement instead of `serde::Serialize`).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> JsonValue;
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where parsing failed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { message: message.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the
                            // suite's writers; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = JsonValue::Object(vec![
            ("id".into(), JsonValue::from("fig_1")),
            ("count".into(), JsonValue::from(3.0)),
            ("half".into(), JsonValue::from(0.5)),
            ("ok".into(), JsonValue::from(true)),
            ("nothing".into(), JsonValue::Null),
            (
                "rows".into(),
                JsonValue::Array(vec![JsonValue::from("a\"quote"), JsonValue::Number(-12.25)]),
            ),
            ("empty".into(), JsonValue::Array(vec![])),
        ]);
        let text = doc.pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn pretty_uses_serde_json_layout() {
        let doc = JsonValue::Object(vec![("id".into(), JsonValue::from("x"))]);
        assert_eq!(doc.pretty(), "{\n  \"id\": \"x\"\n}");
    }

    #[test]
    fn index_and_eq_sugar() {
        let parsed = parse("{\"id\": \"table_i\", \"n\": 2}").unwrap();
        assert_eq!(parsed["id"], "table_i");
        assert_eq!(parsed["n"], 2.0);
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = parse("\"line\\nbreak \\u0041 caf\u{e9}\"").unwrap();
        assert_eq!(parsed.as_str(), Some("line\nbreak A café"));
    }

    #[test]
    fn integers_print_bare_and_floats_keep_fraction() {
        assert_eq!(write_number(3.0), "3");
        assert_eq!(write_number(68.51), "68.51");
        assert_eq!(write_number(f64::NAN), "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }
}
