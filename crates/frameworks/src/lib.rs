//! # dlbench-frameworks
//!
//! The three **framework personalities** — TensorFlow, Caffe and Torch —
//! that DLBench benchmarks, reimplemented from scratch on the shared
//! `dlbench-nn` substrate.
//!
//! A personality bundles everything the paper shows travels with a
//! framework:
//!
//! * **Metadata** (paper Table I): version, backing library, interfaces,
//!   lines of code, license.
//! * **Default training hyperparameters** (Tables II/III): optimizer,
//!   base learning rate and schedule, batch size, iteration budget,
//!   regularizer, input preprocessing.
//! * **Default network architectures** (Tables IV/V), encoded as
//!   [`ArchSpec`] data so they can be instantiated at any input size
//!   (spatial dimensions of the fully-connected stages are derived
//!   programmatically, exactly reproducing the paper's dimensions at the
//!   native 28×28 / 32×32 sizes).
//! * **Weight initialization scheme** and **execution profile** (for the
//!   simulated device timing model).
//!
//! The [`trainer`] module runs any *(host framework, default setting,
//! dataset, device)* cell — the unit of measurement for every figure and
//! table in the paper — and reports the three metric groups.
//!
//! ## Example
//!
//! ```
//! use dlbench_frameworks::{DefaultSetting, FrameworkKind, Scale, trainer};
//! use dlbench_data::DatasetKind;
//! use dlbench_simtime::devices;
//!
//! // TensorFlow training MNIST with its own MNIST default setting.
//! let cell = trainer::Cell {
//!     host: FrameworkKind::TensorFlow,
//!     setting: DefaultSetting::new(FrameworkKind::TensorFlow, DatasetKind::Mnist),
//!     dataset: DatasetKind::Mnist,
//!     device: devices::gtx_1080_ti(),
//! };
//! let outcome = trainer::run_cell(&cell, Scale::Tiny, 42);
//! assert!(outcome.accuracy > 0.2, "tiny-scale training should beat chance");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod defaults;
mod kind;
mod scale;
mod spec;
pub mod trainer;

pub use defaults::{arch_defaults, training_defaults, DefaultSetting, Regularizer, TrainingConfig};
pub use kind::{FrameworkKind, FrameworkMeta};
pub use scale::Scale;
pub use spec::{ArchSpec, LayerSpecEntry};
pub use trainer::{GuardCtx, TrainGuard};
