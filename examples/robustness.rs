//! Adversarial robustness as a first-class benchmark metric (paper
//! §III.E): FGSM and JSMA against TensorFlow- and Caffe-trained MNIST
//! models.
//!
//! ```sh
//! cargo run --release -p dlbench-examples --bin robustness
//! ```

use dlbench_adversarial::{fgsm, FgsmConfig};
use dlbench_core::experiments;
use dlbench_core::runner::BenchmarkRunner;
use dlbench_data::DatasetKind;
use dlbench_frameworks::{trainer, FrameworkKind, Scale};

fn main() {
    let mut runner = BenchmarkRunner::new(Scale::Tiny, 42);

    println!("Untargeted FGSM (paper Figure 8)\n");
    let fig8 = experiments::fig8(&mut runner);
    println!("{}", fig8.render());

    println!("Targeted JSMA: crafting digit 1 (paper Figure 9, Tables VIII-IX)\n");
    let fig9 = experiments::fig9(&mut runner);
    println!("{}", fig9.render());
    println!("{}", experiments::table_viii(&mut runner).render());

    // Bonus: a single crafted example, end to end.
    println!("Single FGSM example against the TF model:");
    let key = BenchmarkRunner::own_default_key(FrameworkKind::TensorFlow, DatasetKind::Mnist);
    let scale = runner.scale();
    let seed = runner.seed();
    runner.with_outcome(key, |out| {
        let (_, test) = trainer::generate_data(DatasetKind::Mnist, scale, seed);
        let x = test.images.slice_batch(0);
        let label = test.labels[0];
        let report = fgsm(
            &mut out.model,
            &x,
            label,
            &FgsmConfig { epsilon: experiments::FGSM_EPSILON, clamp: Some((0.0, 1.0)) },
        );
        println!(
            "  true class {label}: model predicted {} -> after perturbation {} ({})",
            report.original_pred,
            report.adversarial_pred,
            if report.success { "attack succeeded" } else { "attack failed" }
        );
    });
}
