//! Untargeted Fast Gradient Sign Method (paper Equation (1)).

use crate::report::ConfusionRates;
use dlbench_nn::{Network, SoftmaxCrossEntropy};
use dlbench_tensor::Tensor;

/// FGSM parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FgsmConfig {
    /// Perturbation magnitude ε (the paper's §III.E uses 0.001 on raw
    /// MNIST pixels; calibrate per input pipeline).
    pub epsilon: f32,
    /// Optional clamp range keeping the adversarial example a valid
    /// input (e.g. `(0, 1)` for raw pixels; `None` for standardized
    /// inputs).
    pub clamp: Option<(f32, f32)>,
}

/// Result of one FGSM crafting attempt.
#[derive(Debug, Clone)]
pub struct FgsmReport {
    /// The crafted example `x + ε·sign(∇ₓL)`.
    pub adversarial: Tensor,
    /// Model prediction on the original input.
    pub original_pred: usize,
    /// Model prediction on the adversarial input.
    pub adversarial_pred: usize,
    /// Whether the prediction changed (untargeted success).
    pub success: bool,
}

/// Crafts one untargeted adversarial example for a single sample
/// (`x` is `[1, …]`, `label` its true class).
pub fn fgsm(net: &mut Network, x: &Tensor, label: usize, config: &FgsmConfig) -> FgsmReport {
    assert_eq!(x.shape()[0], 1, "fgsm operates on single samples");
    let logits = net.forward(x, false);
    let original_pred = logits.argmax_rows()[0];

    let mut loss = SoftmaxCrossEntropy::new();
    loss.forward(&logits, &[label]);
    net.zero_grads();
    let grad_x = net.backward(&loss.backward());

    let mut adversarial = x.clone();
    for (v, &g) in adversarial.data_mut().iter_mut().zip(grad_x.data()) {
        *v += config.epsilon * sign(g);
    }
    if let Some((lo, hi)) = config.clamp {
        adversarial.clamp_inplace(lo, hi);
    }
    let adv_logits = net.forward(&adversarial, false);
    let adversarial_pred = adv_logits.argmax_rows()[0];
    FgsmReport {
        adversarial,
        original_pred,
        adversarial_pred,
        // Success means the attack *changed* the model's mind, not that
        // the result disagrees with the label: on an input the model
        // already misclassifies, `!= label` would count a do-nothing
        // perturbation as a win.
        success: adversarial_pred != original_pred,
    }
}

/// The paper's `sign()` (Equation (1)): −1 / 0 / +1.
fn sign(v: f32) -> f32 {
    if v > 0.0 {
        1.0
    } else if v < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Runs FGSM over a labelled set and tallies per-source-class success
/// rates and the distribution of classes adversarial examples fall
/// into (paper Figure 8).
///
/// Only samples the model classifies correctly are attacked (an
/// already-misclassified input needs no crafting).
pub fn fgsm_success_rates(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    num_classes: usize,
    config: &FgsmConfig,
) -> ConfusionRates {
    assert_eq!(images.shape()[0], labels.len(), "image/label mismatch");
    let mut rates = ConfusionRates::new(num_classes);
    // One batched forward decides who gets attacked; crafting (a
    // backward pass plus a second forward per sample) only runs for
    // the correctly-classified samples instead of being thrown away
    // afterwards for the rest.
    let preds = net.forward(images, false).argmax_rows();
    for (i, &label) in labels.iter().enumerate() {
        if preds[i] != label {
            continue;
        }
        let x = images.slice_batch(i);
        let report = fgsm(net, &x, label, config);
        rates.record(label, report.adversarial_pred);
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlbench_nn::{Initializer, Linear};
    use dlbench_tensor::SeededRng;

    fn linear_net(rng: &mut SeededRng) -> Network {
        let mut net = Network::new("fgsm-toy");
        net.push(Linear::new(4, 3, Initializer::Xavier, rng));
        net
    }

    #[test]
    fn sign_matches_paper_definition() {
        assert_eq!(sign(3.2), 1.0);
        assert_eq!(sign(-0.1), -1.0);
        assert_eq!(sign(0.0), 0.0);
    }

    #[test]
    fn perturbation_is_linf_bounded() {
        let mut rng = SeededRng::new(1);
        let mut net = linear_net(&mut rng);
        let x = Tensor::randn(&[1, 4], 0.0, 1.0, &mut rng);
        let report = fgsm(&mut net, &x, 0, &FgsmConfig { epsilon: 0.1, clamp: None });
        for (a, b) in report.adversarial.data().iter().zip(x.data()) {
            assert!((a - b).abs() <= 0.1 + 1e-6);
        }
    }

    #[test]
    fn large_epsilon_flips_a_confident_linear_model() {
        // A linear model's loss gradient points away from the true
        // class; a big enough step must change the argmax.
        let mut rng = SeededRng::new(2);
        let mut net = linear_net(&mut rng);
        let x = Tensor::randn(&[1, 4], 0.0, 1.0, &mut rng);
        let label = net.forward(&x, false).argmax_rows()[0];
        let report = fgsm(&mut net, &x, label, &FgsmConfig { epsilon: 10.0, clamp: None });
        assert!(report.success, "eps=10 should dominate a unit-scale input");
    }

    #[test]
    fn clamp_keeps_valid_range() {
        let mut rng = SeededRng::new(3);
        let mut net = linear_net(&mut rng);
        let x = Tensor::rand_uniform(&[1, 4], 0.0, 1.0, &mut rng);
        let report = fgsm(&mut net, &x, 0, &FgsmConfig { epsilon: 5.0, clamp: Some((0.0, 1.0)) });
        assert!(report.adversarial.min() >= 0.0);
        assert!(report.adversarial.max() <= 1.0);
    }

    #[test]
    fn success_is_relative_to_the_original_prediction() {
        // Regression: `success` used to compare against the *label*, so
        // a do-nothing perturbation of an already-misclassified sample
        // counted as a successful attack.
        let mut rng = SeededRng::new(5);
        let mut net = linear_net(&mut rng);
        let x = Tensor::randn(&[1, 4], 0.0, 1.0, &mut rng);
        let pred = net.forward(&x, false).argmax_rows()[0];
        let wrong_label = (pred + 1) % 3;
        // ε = 0 leaves the input untouched; the prediction cannot
        // change, so the attack must not count as a success even though
        // the prediction disagrees with the (wrong) label.
        let report = fgsm(&mut net, &x, wrong_label, &FgsmConfig { epsilon: 0.0, clamp: None });
        assert_eq!(report.adversarial_pred, report.original_pred);
        assert!(!report.success);
    }

    #[test]
    fn success_rates_match_crafting_each_correct_sample() {
        // Regression companion for the predict-first restructure: the
        // tally must be what per-sample crafting over the correctly
        // classified subset produces, with identical attempt counts.
        let mut rng = SeededRng::new(6);
        let mut net = linear_net(&mut rng);
        let images = Tensor::randn(&[8, 4], 0.0, 1.0, &mut rng);
        let preds = net.forward(&images, false).argmax_rows();
        // Half right, half deliberately wrong.
        let labels: Vec<usize> = preds
            .iter()
            .enumerate()
            .map(|(i, &p)| if i % 2 == 0 { p } else { (p + 1) % 3 })
            .collect();
        let config = FgsmConfig { epsilon: 0.1, clamp: None };
        let rates = fgsm_success_rates(&mut net, &images, &labels, 3, &config);

        let correct = labels.iter().enumerate().filter(|&(i, &l)| preds[i] == l).count();
        assert_eq!(rates.total_attempts(), correct);
        assert_eq!(correct, 4);
        let mut expect = ConfusionRates::new(3);
        for (i, &label) in labels.iter().enumerate() {
            if preds[i] != label {
                continue;
            }
            let report = fgsm(&mut net, &images.slice_batch(i), label, &config);
            expect.record(label, report.adversarial_pred);
        }
        assert_eq!(rates.total_attempts(), expect.total_attempts());
        for class in 0..3 {
            assert_eq!(rates.success_rate(class), expect.success_rate(class));
        }
    }

    #[test]
    fn success_rates_skip_misclassified() {
        let mut rng = SeededRng::new(4);
        let mut net = linear_net(&mut rng);
        let images = Tensor::randn(&[6, 4], 0.0, 1.0, &mut rng);
        // Deliberately wrong labels: nothing is originally correct, so
        // nothing is attacked.
        let preds = net.forward(&images, false).argmax_rows();
        let wrong: Vec<usize> = preds.iter().map(|&p| (p + 1) % 3).collect();
        let rates = fgsm_success_rates(
            &mut net,
            &images,
            &wrong,
            3,
            &FgsmConfig { epsilon: 0.1, clamp: None },
        );
        assert_eq!(rates.total_attempts(), 0);
    }
}
