//! Random-noise "attack" baseline.
//!
//! The paper's robustness metric covers "targeted attacks and random
//! (untargeted) attacks". Random perturbations of the same L∞ magnitude
//! as FGSM are the control condition: a model whose accuracy collapses
//! under random noise is fragile independent of gradients, while the
//! FGSM-minus-noise gap isolates the *adversarial* component of the
//! vulnerability.

use crate::report::ConfusionRates;
use dlbench_nn::Network;
use dlbench_tensor::{SeededRng, Tensor};

/// Random-perturbation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// L∞ magnitude of the perturbation (compare with FGSM's ε).
    pub epsilon: f32,
    /// Sign-noise (`±ε`, matching FGSM's step geometry) vs uniform in
    /// `[-ε, ε]`.
    pub sign_noise: bool,
    /// Valid input range for clamping.
    pub clamp: Option<(f32, f32)>,
}

/// Perturbs one sample with random noise and reports the prediction
/// flip, tallied exactly like the gradient attacks.
pub fn noise_attack(
    net: &mut Network,
    x: &Tensor,
    label: usize,
    config: &NoiseConfig,
    rng: &mut SeededRng,
) -> (usize, usize, bool) {
    assert_eq!(x.shape()[0], 1, "noise_attack operates on single samples");
    let original_pred = net.forward(x, false).argmax_rows()[0];
    let mut adv = x.clone();
    for v in adv.data_mut() {
        let delta = if config.sign_noise {
            if rng.bernoulli(0.5) {
                config.epsilon
            } else {
                -config.epsilon
            }
        } else {
            rng.uniform(-config.epsilon, config.epsilon)
        };
        *v += delta;
    }
    if let Some((lo, hi)) = config.clamp {
        adv.clamp_inplace(lo, hi);
    }
    let adversarial_pred = net.forward(&adv, false).argmax_rows()[0];
    (original_pred, adversarial_pred, adversarial_pred != label)
}

/// Noise campaign over a labelled set.
pub fn noise_success_rates(
    net: &mut Network,
    images: &Tensor,
    labels: &[usize],
    num_classes: usize,
    config: &NoiseConfig,
    rng: &mut SeededRng,
) -> ConfusionRates {
    assert_eq!(images.shape()[0], labels.len(), "image/label mismatch");
    let mut rates = ConfusionRates::new(num_classes);
    for (i, &label) in labels.iter().enumerate() {
        let x = images.slice_batch(i);
        let (orig, adv, _) = noise_attack(net, &x, label, config, rng);
        if orig != label {
            continue;
        }
        rates.record(label, adv);
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlbench_nn::{Initializer, Linear};

    fn toy_net(rng: &mut SeededRng) -> Network {
        let mut net = Network::new("noise-toy");
        net.push(Linear::new(6, 4, Initializer::Xavier, rng));
        net
    }

    #[test]
    fn zero_epsilon_never_flips() {
        let mut rng = SeededRng::new(1);
        let mut net = toy_net(&mut rng);
        let images = Tensor::rand_uniform(&[10, 6], 0.0, 1.0, &mut rng);
        let labels = net.forward(&images, false).argmax_rows();
        let config = NoiseConfig { epsilon: 0.0, sign_noise: true, clamp: None };
        let rates = noise_success_rates(&mut net, &images, &labels, 4, &config, &mut rng);
        assert_eq!(rates.mean_success_rate(), 0.0);
        assert_eq!(rates.total_attempts(), 10);
    }

    #[test]
    fn perturbation_bounded() {
        let mut rng = SeededRng::new(2);
        let mut net = toy_net(&mut rng);
        let x = Tensor::rand_uniform(&[1, 6], 0.3, 0.7, &mut rng);
        let config = NoiseConfig { epsilon: 0.1, sign_noise: false, clamp: None };
        // Re-run the perturbation and check the bound by reconstructing
        // from the attack's contract: original stays fixed.
        let before = x.clone();
        let _ = noise_attack(&mut net, &x, 0, &config, &mut rng);
        assert_eq!(x, before, "input must not be mutated");
    }

    #[test]
    fn large_noise_flips_some_predictions() {
        let mut rng = SeededRng::new(3);
        let mut net = toy_net(&mut rng);
        let images = Tensor::rand_uniform(&[40, 6], 0.0, 1.0, &mut rng);
        let labels = net.forward(&images, false).argmax_rows();
        let config = NoiseConfig { epsilon: 2.0, sign_noise: true, clamp: None };
        let rates = noise_success_rates(&mut net, &images, &labels, 4, &config, &mut rng);
        assert!(rates.mean_success_rate() > 0.1, "huge noise should flip something");
    }
}
