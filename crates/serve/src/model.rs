//! Model registry: named models rebuilt from framework personality
//! architecture specs and (optionally) warm-loaded from `dlbench-nn`
//! checkpoints, each served behind its own micro-batcher.

use crate::batcher::{BatchConfig, MicroBatcher, Prediction};
use crate::metrics::ServeMetrics;
use crate::ServeError;
use dlbench_data::{DatasetKind, Preprocessing};
use dlbench_frameworks::{trainer, DefaultSetting, FrameworkKind, Scale};
use dlbench_json::JsonValue;
use dlbench_nn::Network;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything needed to rebuild the exact network a training cell
/// produced: the host personality, its default setting, the dataset,
/// the scale and the seed. Checkpoints saved by `dlbench train --save`
/// load bit-exactly against the network this spec rebuilds.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Registry name (the `<model>` in `/predict/<model>`).
    pub name: String,
    /// Host framework personality whose architecture is served.
    pub host: FrameworkKind,
    /// Default setting (owner + tuned-for dataset) in effect.
    pub setting: DefaultSetting,
    /// Dataset the model classifies.
    pub dataset: DatasetKind,
    /// Input scale (determines the spatial input size).
    pub scale: Scale,
    /// Seed the cell was trained with.
    pub seed: u64,
}

impl ModelSpec {
    /// A spec for `host` serving its own default setting on `dataset`.
    pub fn own_default(
        name: impl Into<String>,
        host: FrameworkKind,
        dataset: DatasetKind,
        scale: Scale,
        seed: u64,
    ) -> Self {
        Self {
            name: name.into(),
            host,
            setting: DefaultSetting::new(host, dataset),
            dataset,
            scale,
            seed,
        }
    }

    /// `(channels, height, width)` of one input sample.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        let size = self.scale.image_size(self.dataset);
        (self.dataset.channels(), size, size)
    }

    /// Instantiates the served model, loading parameters from a
    /// checkpoint file when given (otherwise the network keeps its
    /// seeded initialization — useful for load benchmarks where the
    /// weights' provenance is irrelevant).
    pub fn instantiate(
        &self,
        checkpoint: Option<&std::path::Path>,
    ) -> Result<ServedModel, ServeError> {
        let mut model = self.build();
        if let Some(path) = checkpoint {
            dlbench_nn::load_parameters_path(&mut model, path)
                .map_err(|e| ServeError::Checkpoint(e.to_string()))?;
        }
        Ok(self.served(model))
    }

    /// Instantiates the served model from an in-memory checkpoint
    /// stream.
    pub fn instantiate_from(
        &self,
        mut r: &mut dyn std::io::Read,
    ) -> Result<ServedModel, ServeError> {
        let mut model = self.build();
        dlbench_nn::load_parameters(&mut model, &mut r)
            .map_err(|e| ServeError::Checkpoint(e.to_string()))?;
        Ok(self.served(model))
    }

    fn build(&self) -> Network {
        trainer::build_cell_model(self.host, &self.setting, self.dataset, self.scale, self.seed)
    }

    fn served(&self, model: Network) -> ServedModel {
        let preprocessing =
            trainer::effective_preprocessing(self.host, &self.setting, self.dataset);
        // Mean subtraction needs the training-set statistics the cell
        // saw; the data seed is framework-independent, so regenerating
        // the training split reproduces them exactly.
        let channel_means = if preprocessing == Preprocessing::MeanSubtract {
            let (train, _) = trainer::generate_data(self.dataset, self.scale, self.seed);
            Preprocessing::channel_means(&train)
        } else {
            Vec::new()
        };
        ServedModel { spec: self.clone(), preprocessing, channel_means, model }
    }
}

/// A model ready to serve: the network plus the input pipeline the
/// training cell used, so served predictions match offline inference
/// bit for bit.
pub struct ServedModel {
    /// The spec this model was built from.
    pub spec: ModelSpec,
    /// Input preprocessing in effect for the cell.
    pub preprocessing: Preprocessing,
    /// Per-channel means (empty unless mean subtraction is in effect).
    pub channel_means: Vec<f32>,
    /// The network itself.
    pub model: Network,
}

struct Entry {
    batcher: MicroBatcher,
    metrics: Arc<ServeMetrics>,
}

/// Named models, each behind its own [`MicroBatcher`] and metrics.
#[derive(Default)]
pub struct ModelRegistry {
    entries: BTreeMap<String, Entry>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `served` under its spec name, spawning its batcher
    /// worker. Fails if the name is already taken.
    pub fn register(&mut self, served: ServedModel, config: BatchConfig) -> Result<(), ServeError> {
        let name = served.spec.name.clone();
        if self.entries.contains_key(&name) {
            return Err(ServeError::BadInput(format!("model {name:?} already registered")));
        }
        let metrics = Arc::new(ServeMetrics::new());
        let batcher = MicroBatcher::spawn(served, config, Arc::clone(&metrics));
        self.entries.insert(name, Entry { batcher, metrics });
        Ok(())
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Routes one request to the named model's batcher and waits for
    /// its prediction.
    pub fn predict(&self, model: &str, input: Vec<f32>) -> Result<Prediction, ServeError> {
        let entry =
            self.entries.get(model).ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        entry.batcher.predict(input)
    }

    /// Live queue depth for the named model, if registered.
    pub fn queue_depth(&self, model: &str) -> Option<usize> {
        self.entries.get(model).map(|e| e.batcher.queue_depth())
    }

    /// The `/metrics` document: one snapshot per model, keyed by name.
    pub fn metrics_json(&self) -> JsonValue {
        JsonValue::Object(
            self.entries
                .iter()
                .map(|(name, e)| (name.clone(), e.metrics.snapshot(e.batcher.queue_depth())))
                .collect(),
        )
    }

    /// Graceful drain: every batcher stops accepting, finishes its
    /// queued requests, and its worker thread is joined.
    pub fn drain(&self) {
        for e in self.entries.values() {
            e.batcher.drain();
        }
    }
}
