//! The experiment registry: every table and figure of the paper's
//! evaluation, enumerable and runnable.

use crate::experiments;
use crate::report::ExperimentReport;
use crate::runner::BenchmarkRunner;

/// Identifier of one paper artifact the suite can regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table I: framework properties.
    TableI,
    /// Table II: MNIST training defaults.
    TableII,
    /// Table III: CIFAR-10 training defaults.
    TableIII,
    /// Table IV: MNIST architectures.
    TableIV,
    /// Table V: CIFAR-10 architectures.
    TableV,
    /// Figure 1: MNIST own defaults (CPU/GPU).
    Fig1,
    /// Figure 2: CIFAR-10 own defaults (CPU/GPU).
    Fig2,
    /// Figure 3: MNIST dataset-dependent defaults.
    Fig3,
    /// Figure 4: CIFAR-10 dataset-dependent defaults.
    Fig4,
    /// Figure 5: Caffe loss curves on CIFAR-10.
    Fig5,
    /// Figure 6: MNIST framework-dependent defaults.
    Fig6,
    /// Figure 7: CIFAR-10 framework-dependent defaults.
    Fig7,
    /// Table VI: MNIST summary.
    TableVI,
    /// Table VII: CIFAR-10 summary.
    TableVII,
    /// Figure 8: untargeted FGSM success rates.
    Fig8,
    /// Figure 9: targeted JSMA success rates for digit 1.
    Fig9,
    /// Table VIII: targeted-attack crafting times.
    TableVIII,
    /// Table IX: feature-map/regularizer impact.
    TableIX,
}

impl ExperimentId {
    /// All experiments in the paper's presentation order.
    pub const ALL: [ExperimentId; 18] = [
        ExperimentId::TableI,
        ExperimentId::TableII,
        ExperimentId::TableIII,
        ExperimentId::TableIV,
        ExperimentId::TableV,
        ExperimentId::Fig1,
        ExperimentId::Fig2,
        ExperimentId::Fig3,
        ExperimentId::Fig4,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::TableVI,
        ExperimentId::TableVII,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::TableVIII,
        ExperimentId::TableIX,
    ];

    /// Registry key (`"fig_1"`, `"table_vi"`, …).
    pub fn key(&self) -> &'static str {
        match self {
            ExperimentId::TableI => "table_i",
            ExperimentId::TableII => "table_ii",
            ExperimentId::TableIII => "table_iii",
            ExperimentId::TableIV => "table_iv",
            ExperimentId::TableV => "table_v",
            ExperimentId::Fig1 => "fig_1",
            ExperimentId::Fig2 => "fig_2",
            ExperimentId::Fig3 => "fig_3",
            ExperimentId::Fig4 => "fig_4",
            ExperimentId::Fig5 => "fig_5",
            ExperimentId::Fig6 => "fig_6",
            ExperimentId::Fig7 => "fig_7",
            ExperimentId::TableVI => "table_vi",
            ExperimentId::TableVII => "table_vii",
            ExperimentId::Fig8 => "fig_8",
            ExperimentId::Fig9 => "fig_9",
            ExperimentId::TableVIII => "table_viii",
            ExperimentId::TableIX => "table_ix",
        }
    }

    /// Looks an experiment up by registry key.
    pub fn from_key(key: &str) -> Option<ExperimentId> {
        ExperimentId::ALL.iter().copied().find(|e| e.key() == key)
    }

    /// Whether this experiment needs training runs (static configuration
    /// tables do not).
    pub fn needs_training(&self) -> bool {
        !matches!(
            self,
            ExperimentId::TableI
                | ExperimentId::TableII
                | ExperimentId::TableIII
                | ExperimentId::TableIV
                | ExperimentId::TableV
        )
    }

    /// Regenerates the experiment.
    pub fn run(&self, runner: &mut BenchmarkRunner) -> ExperimentReport {
        match self {
            ExperimentId::TableI => experiments::table_i(),
            ExperimentId::TableII => experiments::table_ii(),
            ExperimentId::TableIII => experiments::table_iii(),
            ExperimentId::TableIV => experiments::table_iv(),
            ExperimentId::TableV => experiments::table_v(),
            ExperimentId::Fig1 => experiments::fig1(runner),
            ExperimentId::Fig2 => experiments::fig2(runner),
            ExperimentId::Fig3 => experiments::fig3(runner),
            ExperimentId::Fig4 => experiments::fig4(runner),
            ExperimentId::Fig5 => experiments::fig5(runner),
            ExperimentId::Fig6 => experiments::fig6(runner),
            ExperimentId::Fig7 => experiments::fig7(runner),
            ExperimentId::TableVI => experiments::table_vi(runner),
            ExperimentId::TableVII => experiments::table_vii(runner),
            ExperimentId::Fig8 => experiments::fig8(runner),
            ExperimentId::Fig9 => experiments::fig9(runner),
            ExperimentId::TableVIII => experiments::table_viii(runner),
            ExperimentId::TableIX => experiments::table_ix(runner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        // 9 tables + 9 figures.
        assert_eq!(ExperimentId::ALL.len(), 18);
        let tables = ExperimentId::ALL.iter().filter(|e| e.key().starts_with("table")).count();
        let figs = ExperimentId::ALL.iter().filter(|e| e.key().starts_with("fig")).count();
        assert_eq!(tables, 9);
        assert_eq!(figs, 9);
    }

    #[test]
    fn keys_roundtrip() {
        for e in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_key(e.key()), Some(e));
        }
        assert_eq!(ExperimentId::from_key("fig_42"), None);
    }

    #[test]
    fn static_tables_run_without_training() {
        let mut runner = BenchmarkRunner::new(dlbench_frameworks::Scale::Tiny, 1);
        for e in ExperimentId::ALL.iter().filter(|e| !e.needs_training()) {
            let report = e.run(&mut runner);
            assert_eq!(report.id, e.key());
            assert!(!report.facts.is_empty());
        }
        assert_eq!(runner.trained_cells(), 0);
    }
}
