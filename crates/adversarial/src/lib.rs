//! # dlbench-adversarial
//!
//! The adversarial-robustness metric group of the DLBench suite (paper
//! §II.C and §III.E): attacks that craft adversarial examples against
//! trained models, and the success-rate/crafting-time statistics the
//! paper reports in Figures 8–9 and Tables VIII–IX.
//!
//! Two attacks are implemented, matching the paper:
//!
//! * [`fgsm`] — the untargeted Fast Gradient Sign Method
//!   (Goodfellow et al., 2014): `x' = x + ε·sign(∇ₓ L(x, y))`.
//! * [`jsma`] — the targeted Jacobian-based Saliency Map Attack
//!   (Papernot et al., 2016): greedy per-feature perturbation driven by
//!   the saliency map of Equation (2) in the paper.
//!
//! Both operate on any trained [`dlbench_nn::Network`] through its
//! input-gradient path, so they apply uniformly to models trained by any
//! framework personality — which is exactly what lets the benchmark
//! compare the *frameworks'* robustness rather than the attacks.
//!
//! For the text workload, where token ids are discrete and the input
//! gradient is exactly zero, [`fgsm_embedding`] and [`pgd_embedding`]
//! run the same attacks in the continuous *embedding space* by
//! splitting the network after its embedding layer.
//!
//! ## Example
//!
//! ```
//! use dlbench_adversarial::{fgsm, FgsmConfig};
//! use dlbench_nn::{Initializer, Linear, Network};
//! use dlbench_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = Network::new("toy");
//! net.push(Linear::new(4, 3, Initializer::Xavier, &mut rng));
//! let x = Tensor::randn(&[1, 4], 0.0, 1.0, &mut rng);
//! let report = fgsm(&mut net, &x, 1, &FgsmConfig { epsilon: 0.25, clamp: Some((-3.0, 3.0)) });
//! assert_eq!(report.adversarial.shape(), x.shape());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod embed;
mod fgsm;
mod jsma;
mod noise;
mod pgd;
mod report;

pub use embed::{
    fgsm_embedding, fgsm_embedding_success_rates, pgd_embedding, pgd_embedding_success_rates,
    EmbedAttackConfig,
};
pub use fgsm::{fgsm, fgsm_success_rates, FgsmConfig, FgsmReport};
pub use jsma::{jsma, jsma_success_matrix, JsmaConfig, JsmaOutcome};
pub use noise::{noise_attack, noise_success_rates, NoiseConfig};
pub use pgd::{pgd, pgd_success_rates, pgd_with_restarts, PgdConfig};
pub use report::{AttackSummary, ConfusionRates, CraftingCostModel};
