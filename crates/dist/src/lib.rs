//! # dlbench-dist — deterministic simulated data-parallel training
//!
//! Multi-worker data-parallel training over in-process channels, built
//! so that the *result* of training is a pure function of the cell
//! `(host, setting, dataset, scale, seed)` — bit-identical at any world
//! size, under either collective, with stragglers slowing workers down
//! or workers dying mid-epoch. The paper's scalability axis (and the
//! Deep500 critique it anticipates) is that distributed benchmarks
//! conflate *what* is computed with *how fast* it moves; this crate
//! separates the two completely:
//!
//! * **Arithmetic** is canonical. A global batch is cut into
//!   world-size-independent shards ([`shard::shard_batch`]), each shard's
//!   gradient is computed bit-deterministically on whichever replica it
//!   lands on (single-threaded kernels, per-`(step, shard)` dropout
//!   streams), and shards meet in a fixed-order reduction tree keyed on
//!   shard id ([`collective::tree_reduce`]). Moving a shard between
//!   workers — for load balancing or failure recovery — cannot change a
//!   bit.
//! * **Time** is simulated. Per-worker compute is priced by the
//!   paper-scale cost model on the cell's devices, and each step's
//!   gradient exchange by the collective's classic cost formula
//!   (parameter server: `2·W·P` serialized through the server's link;
//!   ring all-reduce: `2·(W−1)/W·P` per worker in parallel) on the host
//!   framework's link personality ([`dlbench_simtime::LinkProfile`]).
//!
//! The collectives are pluggable behind the [`collective::Collective`]
//! trait; [`fault::FaultPlan`] injects worker kills and stragglers, and
//! the driver answers with detect-and-rebalance recovery. The
//! [`sweep::scaling_sweep`] entry point produces the `BENCH_dist.json`
//! scaling curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod driver;
pub mod fault;
pub mod shard;
pub mod sim;
pub mod sweep;
pub mod world;

pub use collective::{
    naive_sum, tree_reduce, Collective, ParameterServer, RingAllReduce, Strategy,
};
pub use driver::{run_dist_training, run_dist_training_observed, DistConfig, DistOutcome};
pub use fault::{FaultPlan, Kill, Straggler, StragglerDetector};
pub use shard::{assign_shards, shard_batch, Shard, MAX_SHARDS};
pub use sim::{CommTotals, DistSim};
pub use sweep::scaling_sweep;
pub use world::{ShardGrad, ShardStat};
