#!/usr/bin/env sh
# Repository gate: formatting, lints, build, and the tier-1 test suite.
# Everything runs with --locked against the committed Cargo.lock so the
# script works on hosts with no reachable cargo registry (the workspace
# has no external dependencies; the lockfile only pins workspace
# members).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --locked -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --locked

echo "==> cargo test"
cargo test --workspace --locked -q

echo "==> verify gate (gradcheck + goldens + guards)"
cargo test -p dlbench-verify --locked -q

echo "==> serve smoke (ephemeral port, concurrent predicts, metrics, drain)"
cargo test -p dlbench-serve --test smoke --locked -q

echo "==> profile smoke (traced training, nesting validated, Chrome JSON parses)"
cargo run -p dlbench-cli --release --locked -q -- profile --scale tiny \
    --trace target/dlbench-reports/TRACE_profile.json > /dev/null
test -s target/dlbench-reports/TRACE_profile.json

echo "==> trace overhead bench (tracing off vs on, BENCH_trace.json)"
cargo bench --bench trace --locked -- --quick > /dev/null

echo "==> kernel perf gate (full timings vs committed baseline, >15% fails)"
DLBENCH_PERF_BASELINE="$PWD/crates/bench/baselines/kernels.json" \
    cargo bench --bench kernels --locked
test -s target/dlbench-reports/BENCH_kernels.json

echo "==> dist smoke (2-worker Tiny run, fault injection, bit-identity vs 1 worker)"
cargo run -p dlbench-cli --release --locked -q -- dist-train --workers 2 \
    --strategy ring --max-steps 30 --kill 1:5 > /dev/null
cargo test -p dlbench-integration-tests --test dist --locked -q

echo "==> dist determinism gate (N workers bit-identical to 1, all personalities)"
cargo test -p dlbench-integration-tests --test determinism --locked -q \
    dist_training_is_bit_identical

echo "==> dist scaling bench (quick, BENCH_dist.json)"
cargo bench --bench dist --locked -- --quick > /dev/null
test -s target/dlbench-reports/BENCH_dist.json

echo "==> spec smoke (2-cell grid, resume re-run must be all cache hits)"
rm -rf target/dlbench-check-cache
cargo run -p dlbench-cli --release --locked -q -- run-spec examples/specs/smoke.json \
    --cache-dir target/dlbench-check-cache > /dev/null
cargo run -p dlbench-cli --release --locked -q -- run-spec examples/specs/smoke.json \
    --cache-dir target/dlbench-check-cache | grep -q "0 executed, 2 cache hits"
test -s target/dlbench-reports/BENCH_spec.json
cargo test -p dlbench-integration-tests --test spec --locked -q
rm -rf target/dlbench-check-cache

echo "==> fleet smoke (2 replicas, live promotion under load, zero errored requests)"
cargo run -p dlbench-cli --release --locked -q -- fleet --replicas 2 \
    --workers 2 --max-steps 20 > /dev/null
cargo test -p dlbench-integration-tests --test fleet --locked -q

echo "==> fleet determinism gate (bit-transparent across routing x replicas x scaling)"
cargo test -p dlbench-integration-tests --test determinism --locked -q \
    fleet_serving_is_bit_transparent

echo "==> fleet sweep bench (quick, BENCH_fleet.json, byte-identical across runs)"
cargo bench --bench fleet --locked -- --quick > /dev/null
cp target/dlbench-reports/BENCH_fleet.json target/dlbench-reports/BENCH_fleet.first.json
cargo bench --bench fleet --locked -- --quick > /dev/null
cmp target/dlbench-reports/BENCH_fleet.first.json target/dlbench-reports/BENCH_fleet.json
rm -f target/dlbench-reports/BENCH_fleet.first.json

echo "==> quantize smoke (train -> int8 quantize -> v2 checkpoint reload)"
cargo run -p dlbench-cli --release --locked -q -- quantize --scale tiny \
    --save target/dlbench-check-quant.ckpt > /dev/null
test -s target/dlbench-check-quant.ckpt
cargo run -p dlbench-cli --release --locked -q -- quantize --scale tiny \
    --load target/dlbench-check-quant.ckpt > /dev/null
rm -f target/dlbench-check-quant.ckpt

echo "==> quant serving gate (int8 under loadgen, dtype metrics, checkpoint errors)"
cargo test -p dlbench-integration-tests --test quant --locked -q

echo "==> quantized determinism gate (batched == single-sample, 1 vs 4 threads)"
cargo test -p dlbench-integration-tests --test determinism --locked -q \
    quantized_serving_is_bit_deterministic

echo "==> quant bench (quick, BENCH_quant.json, byte-identical across runs)"
cargo bench --bench quant --locked -- --quick > /dev/null
cp target/dlbench-reports/BENCH_quant.json target/dlbench-reports/BENCH_quant.first.json
cargo bench --bench quant --locked -- --quick > /dev/null
cmp target/dlbench-reports/BENCH_quant.first.json target/dlbench-reports/BENCH_quant.json
rm -f target/dlbench-reports/BENCH_quant.first.json

echo "==> text smoke (train -> int8 quantize -> v2 reload on imdb)"
cargo run -p dlbench-cli --release --locked -q -- quantize --framework torch \
    --dataset imdb --scale tiny --save target/dlbench-check-text.ckpt > /dev/null
test -s target/dlbench-check-text.ckpt
cargo run -p dlbench-cli --release --locked -q -- quantize --framework torch \
    --dataset imdb --scale tiny --load target/dlbench-check-text.ckpt > /dev/null
rm -f target/dlbench-check-text.ckpt

echo "==> text determinism gate (IMDB training + batched token serving, 1 vs 4 threads)"
cargo test -p dlbench-integration-tests --test determinism --locked -q text_

echo "==> text bench (quick, BENCH_text.json, byte-identical across runs)"
cargo bench --bench text --locked -- --quick > /dev/null
cp target/dlbench-reports/BENCH_text.json target/dlbench-reports/BENCH_text.first.json
cargo bench --bench text --locked -- --quick > /dev/null
cmp target/dlbench-reports/BENCH_text.first.json target/dlbench-reports/BENCH_text.json
rm -f target/dlbench-reports/BENCH_text.first.json

echo "==> OK"
