//! Distributed training integration: fault injection, straggler
//! rebalancing, report wiring and protocol edge cases.
//!
//! The bit-identity gate across world sizes lives in `determinism.rs`;
//! these tests exercise the control plane — and verify that control-
//! plane turbulence (kills, stragglers, rebalancing) is *bit-
//! transparent*: it changes simulated time and events, never the
//! trained parameters.

use dlbench_core::dist_report;
use dlbench_data::DatasetKind;
use dlbench_dist::{
    run_dist_training, DistConfig, DistOutcome, FaultPlan, Kill, Straggler, Strategy,
};
use dlbench_frameworks::{DefaultSetting, FrameworkKind, Scale};

const SEED: u64 = 42;
const STEPS: usize = 40;

fn run(workers: usize, strategy: Strategy, faults: FaultPlan, rebalance: bool) -> DistOutcome {
    let host = FrameworkKind::TensorFlow;
    let setting = DefaultSetting::new(host, DatasetKind::Mnist);
    let dcfg = DistConfig { workers, strategy, faults, rebalance, max_steps: Some(STEPS) };
    run_dist_training(host, setting, DatasetKind::Mnist, Scale::Tiny, SEED, &dcfg)
        .expect("distributed run completes")
}

#[test]
fn worker_failure_mid_epoch_recovers_and_is_bit_transparent() {
    let clean = run(3, Strategy::ParameterServer, FaultPlan::default(), true);
    for strategy in Strategy::ALL {
        let faults = FaultPlan { kills: vec![Kill { worker: 1, step: 5 }], stragglers: vec![] };
        let out = run(3, strategy, faults, true);
        assert_eq!(out.live_workers, 2, "{strategy:?}: exactly one worker died");
        assert!(out.final_loss().is_finite());
        assert!(
            out.events.iter().any(|e| e.contains("worker 1 failed")),
            "{strategy:?}: failure must be recorded as an event: {:?}",
            out.events
        );
        // The kill moved shards, not bits: parameters, curve and
        // accuracy match the undisturbed run exactly.
        assert_eq!(out.checkpoint, clean.checkpoint, "{strategy:?}: kill changed parameters");
        assert_eq!(out.loss_curve, clean.loss_curve);
        assert_eq!(out.accuracy.to_bits(), clean.accuracy.to_bits());
    }
}

#[test]
fn losing_every_worker_is_an_error_not_a_hang() {
    let host = FrameworkKind::TensorFlow;
    let setting = DefaultSetting::new(host, DatasetKind::Mnist);
    let dcfg = DistConfig {
        workers: 2,
        faults: FaultPlan {
            kills: vec![Kill { worker: 0, step: 3 }, Kill { worker: 1, step: 3 }],
            stragglers: vec![],
        },
        max_steps: Some(STEPS),
        ..Default::default()
    };
    let err = match run_dist_training(host, setting, DatasetKind::Mnist, Scale::Tiny, SEED, &dcfg) {
        Err(e) => e,
        Ok(_) => panic!("a fully dead world cannot train"),
    };
    assert!(err.contains("no workers remain"), "{err}");
}

#[test]
fn zero_workers_is_rejected() {
    let host = FrameworkKind::TensorFlow;
    let setting = DefaultSetting::new(host, DatasetKind::Mnist);
    let dcfg = DistConfig { workers: 0, ..Default::default() };
    assert!(run_dist_training(host, setting, DatasetKind::Mnist, Scale::Tiny, SEED, &dcfg).is_err());
}

#[test]
fn straggler_detection_rebalances_and_cuts_wait_time() {
    let faults = || FaultPlan {
        kills: vec![],
        stragglers: vec![Straggler { worker: 1, factor: 8.0, from_step: 0 }],
    };
    let clean = run(2, Strategy::Ring, FaultPlan::default(), true);
    let reacted = run(2, Strategy::Ring, faults(), true);
    let ignored = run(2, Strategy::Ring, faults(), false);

    assert!(
        reacted.events.iter().any(|e| e.contains("straggling")),
        "detector must flag the slow worker: {:?}",
        reacted.events
    );
    assert!(ignored.events.is_empty(), "no rebalancing means no events");

    // Rebalancing shifts work off the slow worker, shrinking the idle
    // time the fast worker spends waiting on it.
    let wait = |o: &DistOutcome| {
        o.sims.iter().find(|s| s.device == "CPU").expect("CPU sim").straggler_wait_seconds
    };
    assert!(
        wait(&reacted) < wait(&ignored) * 0.7,
        "rebalance should cut wait substantially: {} vs {}",
        wait(&reacted),
        wait(&ignored)
    );

    // Stragglers and rebalancing are timing phenomena only.
    assert_eq!(reacted.checkpoint, clean.checkpoint, "rebalancing changed parameters");
    assert_eq!(ignored.checkpoint, clean.checkpoint, "a straggler changed parameters");
}

#[test]
fn more_workers_than_shards_leaves_spares_idle_but_correct() {
    // A Tiny batch yields at most 8 canonical shards; with 10 workers
    // at least two idle every step, and the result must still match.
    let wide = run(10, Strategy::Ring, FaultPlan::default(), true);
    let narrow = run(1, Strategy::ParameterServer, FaultPlan::default(), true);
    assert_eq!(wide.checkpoint, narrow.checkpoint);
    assert_eq!(wide.live_workers, 10);
}

#[test]
fn dist_report_carries_world_and_strategy_facts() {
    let faults = FaultPlan { kills: vec![Kill { worker: 2, step: 4 }], stragglers: vec![] };
    let out = run(3, Strategy::ParameterServer, faults, true);
    let report = dist_report(&out);
    assert_eq!(report.rows.len(), 2, "one row per simulated device");
    let fact = |k: &str| {
        report
            .facts
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing fact {k}"))
            .1
            .clone()
    };
    assert_eq!(fact("world size"), "3");
    assert_eq!(fact("strategy"), "ps");
    assert_eq!(fact("live workers"), "2");
    assert!(fact("bytes per step").parse::<u64>().unwrap() > 0);
    assert!(
        report.notes.iter().any(|n| n.contains("worker 2 failed")),
        "failure event must surface as a report note: {:?}",
        report.notes
    );
    // Scaling series: one per device, train seconds over world size.
    assert!(report.series.iter().any(|s| s.name.contains("CPU")));
}

#[test]
fn strategies_agree_bitwise_under_faults() {
    // PS and ring must agree bit-for-bit even while a worker dies and
    // another straggles: the collective is a transport, not arithmetic.
    let faults = || FaultPlan {
        kills: vec![Kill { worker: 0, step: 7 }],
        stragglers: vec![Straggler { worker: 2, factor: 4.0, from_step: 2 }],
    };
    let ps = run(4, Strategy::ParameterServer, faults(), true);
    let ring = run(4, Strategy::Ring, faults(), true);
    assert_eq!(ps.checkpoint, ring.checkpoint);
    assert_eq!(ps.loss_curve, ring.loss_curve);
    // But they price communication differently.
    assert_ne!(ps.comm.bytes_per_step, ring.comm.bytes_per_step);
}
