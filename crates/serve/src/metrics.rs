//! Per-model serving metrics: completed/shed/error counters, a
//! latency histogram (shared [`Histogram`] implementation, so `/metrics`
//! and the bench harness agree on percentile semantics), and the
//! batch-size distribution the micro-batcher actually achieved.

use dlbench_core::Histogram;
use dlbench_json::{JsonValue, ToJson};
use dlbench_trace::Stopwatch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Thread-safe metrics for one served model. All mutation paths are
/// lock-light (atomics for counters, short critical sections for the
/// histogram) so metric recording never backpressures the hot path.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Stopwatch,
    completed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    latency_ms: Mutex<Histogram>,
    /// Time requests sat queued before their batch was assembled.
    queue_wait_ms: Mutex<Histogram>,
    /// Time spent in preprocessing + the batched forward pass.
    forward_ms: Mutex<Histogram>,
    batch_sizes: Mutex<BTreeMap<usize, u64>>,
    /// Queue-depth gauge sampled by the worker at flush time (after a
    /// batch's replies go out), i.e. outstanding = queued + in-flight.
    flush_depth: Mutex<Histogram>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking metrics writer must not take the server down with it.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; throughput is measured from this instant.
    pub fn new() -> Self {
        Self {
            started: Stopwatch::start(),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_ms: Mutex::new(Histogram::new()),
            queue_wait_ms: Mutex::new(Histogram::new()),
            forward_ms: Mutex::new(Histogram::new()),
            batch_sizes: Mutex::new(BTreeMap::new()),
            flush_depth: Mutex::new(Histogram::new()),
        }
    }

    /// Records one completed request and its queue-to-reply latency.
    pub fn observe_latency(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        lock(&self.latency_ms).record(latency.as_secs_f64() * 1e3);
    }

    /// Records one request's queue wait (enqueue to batch assembly).
    pub fn observe_queue_wait(&self, wait: Duration) {
        lock(&self.queue_wait_ms).record(wait.as_secs_f64() * 1e3);
    }

    /// Records one batched forward pass's duration (preprocessing +
    /// model forward, amortized over the whole batch).
    pub fn observe_forward(&self, forward: Duration) {
        lock(&self.forward_ms).record(forward.as_secs_f64() * 1e3);
    }

    /// Records one flushed batch of `n` requests.
    pub fn observe_batch(&self, n: usize) {
        *lock(&self.batch_sizes).entry(n).or_insert(0) += 1;
    }

    /// Records the queue-depth gauge as sampled by the worker at flush
    /// time, after a batch's replies were sent. This is the consistent
    /// depth signal least-queue routing keys on: it counts every
    /// request a batcher has committed to but not yet answered.
    pub fn observe_flush_depth(&self, depth: usize) {
        lock(&self.flush_depth).record(depth as f64);
    }

    /// Records one request shed because the queue was full.
    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one malformed or otherwise failed request.
    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed-request count.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Shed-request count.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Error count.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Point-in-time JSON snapshot for the `/metrics` endpoint.
    /// `queue_depth` is sampled by the caller (the batcher owns the
    /// gauge).
    pub fn snapshot(&self, queue_depth: usize) -> JsonValue {
        let elapsed = self.started.elapsed_s().max(1e-9);
        let completed = self.completed();
        let hist_json = |h: &Mutex<Histogram>| match lock(h).summary() {
            Some(s) => s.to_json(),
            None => JsonValue::Null,
        };
        let latency = hist_json(&self.latency_ms);
        let batches: Vec<JsonValue> = lock(&self.batch_sizes)
            .iter()
            .map(|(&size, &count)| {
                JsonValue::Object(vec![
                    ("batch_size".into(), size.into()),
                    ("count".into(), (count as usize).into()),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("completed".into(), (completed as usize).into()),
            ("shed".into(), (self.shed() as usize).into()),
            ("errors".into(), (self.errors() as usize).into()),
            ("queue_depth".into(), queue_depth.into()),
            ("uptime_s".into(), elapsed.into()),
            ("throughput_rps".into(), (completed as f64 / elapsed).into()),
            ("latency_ms".into(), latency),
            ("queue_wait_ms".into(), hist_json(&self.queue_wait_ms)),
            ("forward_ms".into(), hist_json(&self.forward_ms)),
            ("queue_depth_at_flush".into(), hist_json(&self.flush_depth)),
            ("batch_size_counts".into(), JsonValue::Array(batches)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_counts_and_percentiles() {
        let m = ServeMetrics::new();
        m.observe_latency(Duration::from_millis(10));
        m.observe_latency(Duration::from_millis(20));
        m.observe_queue_wait(Duration::from_millis(4));
        m.observe_forward(Duration::from_millis(6));
        m.observe_batch(2);
        m.observe_flush_depth(5);
        m.count_shed();
        m.count_error();
        let snap = m.snapshot(3);
        assert_eq!(snap["completed"], 2.0);
        assert_eq!(snap["shed"], 1.0);
        assert_eq!(snap["errors"], 1.0);
        assert_eq!(snap["queue_depth"], 3.0);
        let p50 = snap["latency_ms"]["p50"].as_f64().unwrap();
        assert!((14.0..=16.0).contains(&p50), "p50 {p50} should interpolate 10..20");
        // The queue-wait vs. forward-time breakdown rides the snapshot.
        let wait_p50 = snap["queue_wait_ms"]["p50"].as_f64().unwrap();
        assert!((3.5..=4.5).contains(&wait_p50), "queue wait p50 {wait_p50}");
        let fwd_p50 = snap["forward_ms"]["p50"].as_f64().unwrap();
        assert!((5.5..=6.5).contains(&fwd_p50), "forward p50 {fwd_p50}");
        let flush_p50 = snap["queue_depth_at_flush"]["p50"].as_f64().unwrap();
        assert!((4.5..=5.5).contains(&flush_p50), "flush depth p50 {flush_p50}");
        let batches = snap["batch_size_counts"].as_array().unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0]["batch_size"], 2.0);
    }

    #[test]
    fn empty_metrics_snapshot_has_null_latency() {
        let m = ServeMetrics::new();
        let snap = m.snapshot(0);
        assert_eq!(snap["latency_ms"], JsonValue::Null);
        assert_eq!(snap["queue_wait_ms"], JsonValue::Null);
        assert_eq!(snap["forward_ms"], JsonValue::Null);
        assert_eq!(snap["completed"], 0.0);
    }
}
