//! # dlbench-verify
//!
//! Correctness tooling for the DLBench substrate — the gate every
//! benchmark result passes before it is trusted:
//!
//! * [`gradcheck`] — central-difference gradient checking for every
//!   layer, the loss, and whole networks ([`gradcheck_layer`],
//!   [`gradcheck_loss`], [`gradcheck_network`]).
//! * [`golden`] — golden-trace regression: regenerates paper artifacts
//!   at `Scale::Tiny` and diffs their JSON byte-for-byte (and
//!   field-by-field on mismatch) against goldens committed under
//!   `tests/goldens/`; `DLBENCH_BLESS=1` rewrites them.
//! * [`verifier`] — the [`Verifier`] runtime guard (`--verify`):
//!   NaN/Inf and shape invariants checked after every training epoch.
//!
//! A benchmark that mis-reports accuracy or attack success is worse
//! than no benchmark; this crate exists so the numbers in the reports
//! can be traced back to checked math.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod gradcheck;
pub mod verifier;

pub use gradcheck::{
    gradcheck_layer, gradcheck_loss, gradcheck_network, GradCheckConfig, GradCheckReport,
    ParamCheck,
};
pub use verifier::Verifier;
