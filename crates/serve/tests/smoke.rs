//! End-to-end smoke test of the serving stack: a real server on an
//! ephemeral port, concurrent predict requests, a `/metrics` scrape,
//! and a graceful shutdown that answers every in-flight request.

use dlbench_data::DatasetKind;
use dlbench_frameworks::{FrameworkKind, Scale};
use dlbench_json::JsonValue;
use dlbench_serve::{loadgen, serve, BatchConfig, ModelRegistry, ModelSpec};
use std::time::Duration;

const SEED: u64 = 42;

fn registry_with(name: &str, host: FrameworkKind, config: BatchConfig) -> ModelRegistry {
    let spec = ModelSpec::own_default(name, host, DatasetKind::Mnist, Scale::Tiny, SEED);
    let served = spec.instantiate(None).expect("fresh model");
    let mut registry = ModelRegistry::new();
    registry.register(served, config).expect("fresh name");
    registry
}

fn tiny_inputs(count: usize) -> Vec<Vec<f32>> {
    loadgen::sample_inputs(DatasetKind::Mnist, Scale::Tiny, SEED, count)
}

#[test]
fn serves_concurrent_predicts_and_metrics_then_drains() {
    let registry = registry_with("mnist", FrameworkKind::TensorFlow, BatchConfig::default());
    let server = serve(registry, "127.0.0.1:0").expect("ephemeral bind");
    let addr = server.addr();
    let inputs = tiny_inputs(8);

    // Concurrent predict requests from independent client threads.
    let replies: Vec<(u16, JsonValue)> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .map(|input| scope.spawn(move || loadgen::predict(addr, "mnist", input).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(replies.len(), 8);
    for (status, body) in &replies {
        assert_eq!(*status, 200, "predict failed: {}", body.pretty());
        let class = body["class"].as_f64().unwrap();
        assert!((0.0..10.0).contains(&class));
        assert_eq!(body["logits"].as_array().unwrap().len(), 10);
    }

    // Health and metrics endpoints.
    let (status, health) = loadgen::http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let health = dlbench_json::parse(&health).unwrap();
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["models"].as_array().unwrap().len(), 1);

    let (status, metrics) = loadgen::http_request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let metrics = dlbench_json::parse(&metrics).unwrap();
    let model = &metrics["mnist"];
    assert_eq!(model["completed"], 8.0);
    assert_eq!(model["shed"], 0.0);
    for p in ["p50", "p95", "p99"] {
        assert!(model["latency_ms"][p].as_f64().unwrap() >= 0.0);
    }

    // Graceful drain: in-flight work above was all answered; afterwards
    // new requests are refused without a crash.
    server.shutdown();
    assert!(loadgen::predict(addr, "mnist", &inputs[0]).is_err());
}

#[test]
fn unknown_model_and_bad_input_report_clean_statuses() {
    let registry = registry_with("m", FrameworkKind::Torch, BatchConfig::default());
    let server = serve(registry, "127.0.0.1:0").expect("ephemeral bind");
    let addr = server.addr();

    let (status, _) = loadgen::predict(addr, "nope", &[0.0; 784]).unwrap();
    assert_eq!(status, 404);

    let (status, body) =
        loadgen::http_request(addr, "POST", "/predict/m", Some("[1, 2, 3]")).unwrap();
    assert_eq!(status, 400, "wrong input length must be a client error");
    assert!(body.contains("expected"));

    let (status, _) =
        loadgen::http_request(addr, "POST", "/predict/m", Some("{\"not\": \"array\"}")).unwrap();
    assert_eq!(status, 400);

    let (status, _) = loadgen::http_request(addr, "GET", "/no-such-route", None).unwrap();
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn overload_sheds_with_503_and_never_crashes() {
    // A one-slot queue with a slow flush cadence guarantees overflow
    // under a burst; the contract is 503 + Retry-After, not a panic or
    // a hung client.
    let config =
        BatchConfig { max_batch: 1, max_wait: Duration::from_millis(20), queue_capacity: 1 };
    let registry = registry_with("m", FrameworkKind::Caffe, config);
    let server = serve(registry, "127.0.0.1:0").expect("ephemeral bind");
    let addr = server.addr();
    let inputs = tiny_inputs(4);

    let report = loadgen::run(
        addr,
        "m",
        &inputs,
        &loadgen::LoadConfig { mode: loadgen::LoadMode::Closed { concurrency: 8 }, requests: 64 },
    );
    assert_eq!(report.sent, 64);
    assert_eq!(report.errors, 0, "overload must shed (503), not error");
    assert_eq!(report.ok + report.shed, 64);
    assert!(report.ok > 0, "some requests must be served under overload");

    // The server is still healthy after the burst.
    let (status, _) = loadgen::http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn shutdown_endpoint_drains_and_wait_returns() {
    let registry = registry_with("m", FrameworkKind::TensorFlow, BatchConfig::default());
    let server = serve(registry, "127.0.0.1:0").expect("ephemeral bind");
    let addr = server.addr();

    let (status, body) = loadgen::http_request(addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("draining"));
    // wait() must return now that the drain has been requested.
    server.wait();
}

#[test]
fn two_models_are_served_independently() {
    let mut registry = ModelRegistry::new();
    for (name, fw) in [("tf", FrameworkKind::TensorFlow), ("torch", FrameworkKind::Torch)] {
        let spec = ModelSpec::own_default(name, fw, DatasetKind::Mnist, Scale::Tiny, SEED);
        registry.register(spec.instantiate(None).unwrap(), BatchConfig::default()).unwrap();
    }
    let server = serve(registry, "127.0.0.1:0").expect("ephemeral bind");
    let addr = server.addr();
    let input = &tiny_inputs(1)[0];

    let (status, tf) = loadgen::predict(addr, "tf", input).unwrap();
    assert_eq!(status, 200);
    let (status, torch) = loadgen::predict(addr, "torch", input).unwrap();
    assert_eq!(status, 200);
    // Different personalities, different architectures — the logits
    // cannot coincide.
    assert_ne!(tf["logits"], torch["logits"]);

    let (_, metrics) = loadgen::http_request(addr, "GET", "/metrics", None).unwrap();
    let metrics = dlbench_json::parse(&metrics).unwrap();
    assert_eq!(metrics["tf"]["completed"], 1.0);
    assert_eq!(metrics["torch"]["completed"], 1.0);
    server.shutdown();
}
