//! The dense row-major `f32` tensor type.

use crate::arena;
use crate::error::{Result, TensorError};
use crate::rng::SeededRng;
use crate::shape::Shape;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// `Tensor` is the single value type flowing through the DLBench neural
/// network substrate: images are `[N, C, H, W]`, weight matrices are
/// `[out, in]`, convolution kernels are `[out_c, in_c, kh, kw]`.
///
/// All arithmetic is eager and allocates its result; in-place variants
/// (`*_assign`) exist for the optimizer hot paths. Backing storage is
/// recycled through the global [`crate::arena`], so steady-state
/// training and serving loops — which produce the same tensor shapes
/// every iteration — stop touching the system allocator after warm-up.
#[derive(Debug, PartialEq)]
pub struct Tensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = arena::take_vec(self.data.len());
        data.copy_from_slice(&self.data);
        Self { dims: self.dims.clone(), data }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        arena::give_vec(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    // ---------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------

    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` is not
    /// the product of `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self> {
        let expect: usize = dims.iter().product();
        if data.len() != expect {
            return Err(TensorError::ShapeDataMismatch { shape: dims.to_vec(), len: data.len() });
        }
        Ok(Self { dims: dims.to_vec(), data })
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        Self { dims: dims.to_vec(), data: arena::take_vec_zeroed(dims.iter().product()) }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Constant-filled tensor of the given shape.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let mut data = arena::take_vec(dims.iter().product());
        data.fill(value);
        Self { dims: dims.to_vec(), data }
    }

    /// Tensor of i.i.d. Gaussian samples.
    pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut SeededRng) -> Self {
        let mut data = arena::take_vec(dims.iter().product());
        for v in &mut data {
            *v = rng.normal(mean, std);
        }
        Self { dims: dims.to_vec(), data }
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let mut data = arena::take_vec(dims.iter().product());
        for v in &mut data {
            *v = rng.uniform(lo, hi);
        }
        Self { dims: dims.to_vec(), data }
    }

    /// Rank-1 tensor holding `0, 1, …, n-1`.
    pub fn arange(n: usize) -> Self {
        let mut data = arena::take_vec(n);
        for (i, v) in data.iter_mut().enumerate() {
            *v = i as f32;
        }
        Self { dims: vec![n], data }
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// The dimension list.
    pub fn shape(&self) -> &[usize] {
        &self.dims
    }

    /// A [`Shape`] view of the dimensions.
    pub fn shape_view(&self) -> Shape<'_> {
        Shape::new(&self.dims)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing vector (the storage
    /// escapes the arena and is owned by the caller).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape_view().flat_index(index)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let flat = self.shape_view().flat_index(index);
        &mut self.data[flat]
    }

    // ---------------------------------------------------------------
    // Shape manipulation
    // ---------------------------------------------------------------

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidReshape`] on element-count mismatch.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let expect: usize = dims.iter().product();
        if expect != self.data.len() {
            return Err(TensorError::InvalidReshape { from: self.dims.clone(), to: dims.to_vec() });
        }
        let mut data = arena::take_vec(self.data.len());
        data.copy_from_slice(&self.data);
        Ok(Self { dims: dims.to_vec(), data })
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Self {
        let mut data = arena::take_vec(self.data.len());
        data.copy_from_slice(&self.data);
        Self { dims: vec![self.data.len()], data }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose2 requires a matrix");
        let (r, c) = (self.dims[0], self.dims[1]);
        let mut out = arena::take_vec(r * c);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Self { dims: vec![c, r], data: out }
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of range.
    pub fn row(&self, i: usize) -> Self {
        assert_eq!(self.rank(), 2, "row() requires a matrix");
        let c = self.dims[1];
        let mut data = arena::take_vec(c);
        data.copy_from_slice(&self.data[i * c..(i + 1) * c]);
        Self { dims: vec![c], data }
    }

    /// Extracts sample `i` of a batched tensor (`[N, …]`) keeping the
    /// trailing dimensions, producing `[1, …]`.
    ///
    /// # Panics
    ///
    /// Panics on rank-0 tensors or out-of-range `i`.
    pub fn slice_batch(&self, i: usize) -> Self {
        assert!(self.rank() >= 1, "slice_batch requires rank >= 1");
        assert!(i < self.dims[0], "batch index out of range");
        let stride: usize = self.dims[1..].iter().product();
        let mut dims = self.dims.clone();
        dims[0] = 1;
        let mut data = arena::take_vec(stride);
        data.copy_from_slice(&self.data[i * stride..(i + 1) * stride]);
        Self { dims, data }
    }

    /// Concatenates tensors along axis 0. All trailing dims must agree.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if trailing dimensions
    /// differ between inputs.
    pub fn concat0(parts: &[&Tensor]) -> Result<Self> {
        assert!(!parts.is_empty(), "concat0 requires at least one tensor");
        let tail = &parts[0].dims[1..];
        let mut n0 = 0usize;
        for p in parts {
            if &p.dims[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    lhs: parts[0].dims.clone(),
                    rhs: p.dims.clone(),
                    op: "concat0",
                });
            }
            n0 += p.dims[0];
        }
        let mut dims = parts[0].dims.clone();
        dims[0] = n0;
        let mut data = arena::take_vec(dims.iter().product());
        let mut off = 0usize;
        for p in parts {
            data[off..off + p.data.len()].copy_from_slice(&p.data);
            off += p.data.len();
        }
        Ok(Self { dims, data })
    }

    // ---------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims.clone(),
                rhs: other.dims.clone(),
                op,
            });
        }
        Ok(())
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.check_same_shape(other, "add")?;
        let mut data = arena::take_vec(self.data.len());
        for (d, (a, b)) in data.iter_mut().zip(self.data.iter().zip(&other.data)) {
            *d = a + b;
        }
        Ok(Self { dims: self.dims.clone(), data })
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.check_same_shape(other, "sub")?;
        let mut data = arena::take_vec(self.data.len());
        for (d, (a, b)) in data.iter_mut().zip(self.data.iter().zip(&other.data)) {
            *d = a - b;
        }
        Ok(Self { dims: self.dims.clone(), data })
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.check_same_shape(other, "mul")?;
        let mut data = arena::take_vec(self.data.len());
        for (d, (a, b)) in data.iter_mut().zip(self.data.iter().zip(&other.data)) {
            *d = a * b;
        }
        Ok(Self { dims: self.dims.clone(), data })
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (AXPY), the optimizer hot path.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Self {
        let mut data = arena::take_vec(self.data.len());
        for (d, a) in data.iter_mut().zip(&self.data) {
            *d = a * scalar;
        }
        Self { dims: self.dims.clone(), data }
    }

    /// In-place `self *= scalar`.
    pub fn scale_assign(&mut self, scalar: f32) {
        for a in &mut self.data {
            *a *= scalar;
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let mut data = arena::take_vec(self.data.len());
        for (d, &a) in data.iter_mut().zip(&self.data) {
            *d = f(a);
        }
        Self { dims: self.dims.clone(), data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        for a in &mut self.data {
            *a = value;
        }
    }

    /// Clamps all elements into `[lo, hi]`, in place.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        for a in &mut self.data {
            *a = a.clamp(lo, hi);
        }
    }

    // ---------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first on ties; 0 for empty tensors).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// L2 norm of the flattened tensor.
    pub fn norm2(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }

    /// Matrix product of two rank-2 tensors (delegates to the blocked
    /// GEMM in [`crate::gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims[0], self.dims[1]);
        let (k2, n) = (other.dims[0], other.dims[1]);
        assert_eq!(k, k2, "matmul inner dimensions disagree: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        crate::linalg::gemm(m, k, n, &self.data, &other.data, out.data_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(&[2, 3], vec![0.0; 6]).is_ok());
        let err = Tensor::from_vec(&[2, 3], vec![0.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeDataMismatch { .. }));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::full(&[2, 2], 2.0);
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.data(), &[3.0, 4.0, 5.0, 6.0]);
        let diff = sum.sub(&b).unwrap();
        assert_eq!(diff.data(), a.data());
        let prod = a.mul(&b).unwrap();
        assert_eq!(prod.data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
        let mut a = a;
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::arange(6);
        let b = a.reshape(&[2, 3]).unwrap();
        assert_eq!(b.at(&[1, 2]), 5.0);
        assert!(a.reshape(&[4]).is_err());
    }

    #[test]
    fn transpose2_is_involution() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[3, 5], 0.0, 1.0, &mut rng);
        assert_eq!(a.transpose2().transpose2(), a);
        assert_eq!(a.transpose2().at(&[4, 2]), a.at(&[2, 4]));
    }

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn argmax_first_on_tie() {
        let t = Tensor::from_vec(&[4], vec![1.0, 3.0, 3.0, 2.0]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn slice_batch_extracts_sample() {
        let t = Tensor::arange(12).reshape(&[3, 2, 2]).unwrap();
        let s = t.slice_batch(1);
        assert_eq!(s.shape(), &[1, 2, 2]);
        assert_eq!(s.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn concat0_roundtrip() {
        let a = Tensor::arange(4).reshape(&[2, 2]).unwrap();
        let b = Tensor::arange(2).reshape(&[1, 2]).unwrap();
        let c = Tensor::concat0(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 2.0, 3.0, 0.0, 1.0]);
        let bad = Tensor::zeros(&[1, 3]);
        assert!(Tensor::concat0(&[&a, &bad]).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![-1.0, 2.0, 0.5, -3.0]).unwrap();
        assert_eq!(t.sum(), -1.5);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.min(), -3.0);
        assert!((t.mean() + 0.375).abs() < 1e-6);
        assert!((t.norm2() - (1.0f32 + 4.0 + 0.25 + 9.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn clamp_inplace_bounds() {
        let mut t = Tensor::from_vec(&[3], vec![-2.0, 0.5, 9.0]).unwrap();
        t.clamp_inplace(0.0, 1.0);
        assert_eq!(t.data(), &[0.0, 0.5, 1.0]);
    }
}
