//! Dense linear algebra kernels.
//!
//! A register-blocked, cache-aware GEMM is the workhorse behind both
//! fully-connected layers and (via `im2col`) convolutions. The kernel
//! iterates `i, k, j` so the innermost loop streams rows of `b` and
//! `c`, which LLVM auto-vectorizes well for `f32`.
//!
//! Large kernels are parallelized by partitioning the *rows of the
//! destination* across workers (see [`crate::par`]). Every output
//! element depends on exactly one row of `a` (or, for `a^T`, one column
//! read in the same `kk` order), so each worker reproduces the serial
//! kernel's accumulation order exactly and results are bit-identical at
//! any thread count.

use crate::par;
use dlbench_trace::{span_flops, Category};

/// FLOPs charged for an `m×k @ k×n` product (one multiply + one add
/// per MAC) — the same count `dlbench-simtime` layer costs are built
/// from, so profile reports join cleanly.
fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// `c += a @ b` for row-major matrices: `a` is `m×k`, `b` is `k×n`, `c`
/// is `m×n`.
///
/// The destination is *accumulated into*, so callers that need a plain
/// product must zero `c` first (as [`crate::Tensor::matmul`] does).
///
/// # Panics
///
/// Panics (debug assertions) if slice lengths are inconsistent with the
/// given dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let _span = span_flops(Category::Kernel, "gemm", gemm_flops(m, k, n));
    if m.saturating_mul(k).saturating_mul(n) < par::PAR_MIN_WORK {
        gemm_rows(m, k, n, a, b, c);
        return;
    }
    par::par_row_chunks_mut(c, n, |first, c_chunk| {
        let rows = c_chunk.len() / n;
        gemm_rows(rows, k, n, &a[first * k..(first + rows) * k], b, c_chunk);
    });
}

/// Serial `gemm` over a contiguous band of `rows` destination rows;
/// `a` holds the matching rows of the left operand.
fn gemm_rows(rows: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    // Block over k to keep the streamed panel of `b` in L1/L2.
    const KB: usize = 256;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KB).min(k);
        for i in 0..rows {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = a_row[kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cj, bj) in c_row.iter_mut().zip(b_row) {
                    *cj += aik * bj;
                }
            }
        }
        k0 = k1;
    }
}

/// `c = a @ b + bias` where `bias` has length `n` and is broadcast over
/// rows. Used by fully-connected forward passes.
///
/// # Panics
///
/// Panics (debug assertions) on inconsistent slice lengths.
pub fn gemm_bias(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], bias: &[f32], c: &mut [f32]) {
    debug_assert_eq!(bias.len(), n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        c[i * n..(i + 1) * n].copy_from_slice(bias);
    }
    gemm(m, k, n, a, b, c);
}

/// `c += a^T @ b` where `a` is `k×m` row-major (so `a^T` is `m×k`),
/// `b` is `k×n`, `c` is `m×n`. Used for weight gradients without
/// materializing transposes.
pub fn gemm_at_b(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let _span = span_flops(Category::Kernel, "gemm_at_b", gemm_flops(m, k, n));
    if m.saturating_mul(k).saturating_mul(n) < par::PAR_MIN_WORK {
        gemm_at_b_rows(0, m, k, n, a, b, c);
        return;
    }
    par::par_row_chunks_mut(c, n, |first, c_chunk| {
        gemm_at_b_rows(first, m, k, n, a, b, c_chunk);
    });
}

/// Serial `gemm_at_b` over the destination rows held in `c` (a band
/// starting at row `first` of the full output); `a` is the full `k×m`
/// left operand (its columns are strided, so it cannot be sub-sliced
/// per chunk). Accumulation per destination row is `kk` ascending —
/// identical to the whole-matrix kernel.
fn gemm_at_b_rows(first: usize, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let rows = c.len() / n;
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for i in 0..rows {
            let aki = a_row[first + i];
            if aki == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cj, bj) in c_row.iter_mut().zip(b_row) {
                *cj += aki * bj;
            }
        }
    }
}

/// `c += a @ b^T` where `a` is `m×k`, `b` is `n×k` row-major, `c` is
/// `m×n`. Used for input gradients of fully-connected layers.
pub fn gemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let _span = span_flops(Category::Kernel, "gemm_a_bt", gemm_flops(m, k, n));
    if m.saturating_mul(k).saturating_mul(n) < par::PAR_MIN_WORK {
        gemm_a_bt_rows(m, k, n, a, b, c);
        return;
    }
    par::par_row_chunks_mut(c, n, |first, c_chunk| {
        let rows = c_chunk.len() / n;
        gemm_a_bt_rows(rows, k, n, &a[first * k..(first + rows) * k], b, c_chunk);
    });
}

/// Serial `gemm_a_bt` over a contiguous band of `rows` destination
/// rows; `a` holds the matching rows of the left operand.
fn gemm_a_bt_rows(rows: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (j, cj) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cj += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeededRng, Tensor};

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive() {
        let mut rng = SeededRng::new(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 300, 9), (16, 16, 16)] {
            let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, a.data(), b.data(), &mut c);
            let expect = naive(m, k, n, a.data(), b.data());
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 0.0, 0.0, 2.0];
        let mut c = [10.0f32, 0.0, 0.0, 10.0];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [12.0, 0.0, 0.0, 12.0]);
    }

    #[test]
    fn gemm_bias_broadcasts() {
        let a = [1.0f32, 2.0];
        let b = [1.0f32, 0.0, 0.0, 1.0];
        let bias = [10.0f32, 20.0];
        let mut c = [0.0f32; 2];
        gemm_bias(1, 2, 2, &a, &b, &bias, &mut c);
        assert_eq!(c, [11.0, 22.0]);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = SeededRng::new(2);
        let (m, k, n) = (4, 6, 5);
        let a_t = Tensor::randn(&[k, m], 0.0, 1.0, &mut rng); // a^T stored
        let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let mut c = vec![0.0f32; m * n];
        gemm_at_b(m, k, n, a_t.data(), b.data(), &mut c);
        let expect = a_t.transpose2().matmul(&b);
        for (x, y) in c.iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-4);
        }

        let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b_t = Tensor::randn(&[n, k], 0.0, 1.0, &mut rng); // b^T stored
        let mut c2 = vec![0.0f32; m * n];
        gemm_a_bt(m, k, n, a.data(), b_t.data(), &mut c2);
        let expect2 = a.matmul(&b_t.transpose2());
        for (x, y) in c2.iter().zip(expect2.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    /// Each kernel must produce bit-identical output at any thread
    /// count. The shape is chosen above `PAR_MIN_WORK` so the parallel
    /// path actually engages when workers > 1.
    #[test]
    fn parallel_kernels_are_bit_identical_to_serial() {
        let _guard = crate::par::THREAD_CONFIG.lock().unwrap();
        let mut rng = SeededRng::new(3);
        let (m, k, n) = (96, 64, 96); // 96·64·96 ≈ 590k MACs > PAR_MIN_WORK
        let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let a_t = Tensor::randn(&[k, m], 0.0, 1.0, &mut rng);
        let b_t = Tensor::randn(&[n, k], 0.0, 1.0, &mut rng);

        // Serial references computed inside a worker guard, which pins
        // effective parallelism to one thread regardless of the global
        // setting (other tests in this binary may change it).
        let (mut s0, mut s1, mut s2) =
            (vec![0.0f32; m * n], vec![0.0f32; m * n], vec![0.0f32; m * n]);
        crate::par::run_as_worker(|| {
            gemm(m, k, n, a.data(), b.data(), &mut s0);
            gemm_at_b(m, k, n, a_t.data(), b.data(), &mut s1);
            gemm_a_bt(m, k, n, a.data(), b_t.data(), &mut s2);
        });

        for workers in [2, 3, 5] {
            let run = |f: &dyn Fn(&mut [f32])| {
                let mut c = vec![0.0f32; m * n];
                f(&mut c);
                c
            };
            crate::par::set_threads(workers);
            let p0 = run(&|c| gemm(m, k, n, a.data(), b.data(), c));
            let p1 = run(&|c| gemm_at_b(m, k, n, a_t.data(), b.data(), c));
            let p2 = run(&|c| gemm_a_bt(m, k, n, a.data(), b_t.data(), c));
            crate::par::set_threads(1);
            assert_eq!(p0, s0, "gemm diverged at {workers} workers");
            assert_eq!(p1, s1, "gemm_at_b diverged at {workers} workers");
            assert_eq!(p2, s2, "gemm_a_bt diverged at {workers} workers");
        }
    }
}
