//! Train→serve checkpoint promotion with a health gate.
//!
//! A [`Promoter`] consumes rolling checkpoints from a live training run
//! (epoch-boundary snapshots from `dlbench-dist`, streamed through
//! [`dist_training_stream`]) and decides, per candidate, whether the
//! fleet hot-swaps to it:
//!
//! 1. **Finite parameters** — `dlbench_verify::Verifier::check_model`
//!    rejects NaN/Inf-poisoned checkpoints outright.
//! 2. **Finite logits** — a forward pass over a held-out shard must
//!    produce finite outputs.
//! 3. **Accuracy floor** — holdout accuracy must clear the configured
//!    floor, so a regressed checkpoint never replaces a healthier one.
//!
//! A rejected candidate leaves the fleet untouched: the old version
//! keeps serving, which the promotion test suite pins down.

use crate::fleet::Fleet;
use dlbench_data::{Dataset, Preprocessing};
use dlbench_dist::{run_dist_training_observed, DistConfig, DistOutcome};
use dlbench_frameworks::{trainer, DefaultSetting, FrameworkKind, Scale};
use dlbench_serve::{ModelSpec, ServingModel};
use dlbench_tensor::Tensor;
use dlbench_trace::{span, Category};
use dlbench_verify::Verifier;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use dlbench_data::DatasetKind;

/// Health-gate tuning.
#[derive(Debug, Clone, Copy)]
pub struct HealthGateConfig {
    /// Minimum holdout accuracy a candidate must reach (chance on the
    /// ten-class datasets is 0.1).
    pub min_accuracy: f32,
    /// Holdout shard size (taken from the head of the test split).
    pub holdout: usize,
}

impl Default for HealthGateConfig {
    fn default() -> Self {
        Self { min_accuracy: 0.15, holdout: 64 }
    }
}

/// The candidate screen: finite parameters, finite logits on a holdout
/// shard, and an accuracy floor.
pub struct HealthGate {
    images: Tensor,
    labels: Vec<usize>,
    preprocessing: Preprocessing,
    channel_means: Vec<f32>,
    min_accuracy: f32,
}

impl HealthGate {
    /// Builds the gate's holdout shard for `spec` (the same data
    /// pipeline the fleet serves with, so gate accuracy is serving
    /// accuracy).
    pub fn new(spec: &ModelSpec, config: HealthGateConfig) -> Self {
        let (train, test) = trainer::generate_data(spec.dataset, spec.scale, spec.seed);
        let preprocessing =
            trainer::effective_preprocessing(spec.host, &spec.setting, spec.dataset);
        let channel_means = if preprocessing == Preprocessing::MeanSubtract {
            Preprocessing::channel_means(&train)
        } else {
            Vec::new()
        };
        let (images, labels) = holdout_shard(&test, config.holdout);
        Self { images, labels, preprocessing, channel_means, min_accuracy: config.min_accuracy }
    }

    /// Screens one candidate model. Returns its holdout accuracy, or
    /// the reason it was rejected.
    ///
    /// Fp32 candidates run the full parameter verifier first; int8
    /// candidates (quantized checkpoints on an int8 fleet) have no fp32
    /// parameter tensors to verify, so the gate rests on the finite-
    /// logits and accuracy-floor checks — both of which run on the
    /// quantized network exactly as it will serve.
    pub fn check(&self, model: &mut ServingModel) -> Result<f32, String> {
        let _s = span(Category::Fleet, "health_gate");
        if let Some(net) = model.as_fp32_mut() {
            Verifier::check_model(net).map_err(|e| format!("model check failed: {e}"))?;
        }
        let x = self.preprocessing.apply(&self.images, &self.channel_means);
        let logits = model.forward(&x, false);
        if logits.has_non_finite() {
            return Err("non-finite logits on the holdout shard".to_string());
        }
        let preds = logits.argmax_rows();
        let correct = preds.iter().zip(&self.labels).filter(|(p, l)| p == l).count();
        let accuracy = correct as f32 / self.labels.len().max(1) as f32;
        if accuracy < self.min_accuracy {
            return Err(format!(
                "holdout accuracy {accuracy:.3} below the {:.3} floor",
                self.min_accuracy
            ));
        }
        Ok(accuracy)
    }
}

fn holdout_shard(test: &Dataset, holdout: usize) -> (Tensor, Vec<usize>) {
    let n = test.len().min(holdout.max(1));
    let idx: Vec<usize> = (0..n).collect();
    test.gather(&idx)
}

/// What happened to one offered candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum PromotionOutcome {
    /// The candidate cleared the gate and every replica now serves it.
    Promoted {
        /// Fleet version the candidate became.
        version: u64,
        /// Training epochs completed when the checkpoint was taken.
        epoch: usize,
        /// Holdout accuracy the gate measured.
        accuracy: f32,
        /// Requests carried across swaps without being dropped.
        requeued: usize,
    },
    /// The candidate was rejected; the fleet is untouched.
    Rejected {
        /// Training epochs completed when the checkpoint was taken.
        epoch: usize,
        /// Why the gate (or the checkpoint load) refused it.
        reason: String,
    },
}

/// Health-gates candidates and hot-swaps the fleet when they pass.
pub struct Promoter {
    fleet: Arc<Fleet>,
    gate: HealthGate,
}

impl Promoter {
    /// A promoter for `fleet`, gating with `config`.
    pub fn new(fleet: Arc<Fleet>, config: HealthGateConfig) -> Self {
        let gate = HealthGate::new(fleet.spec(), config);
        Self { fleet, gate }
    }

    /// Offers one checkpoint candidate taken after `epoch` epochs.
    pub fn offer(&self, epoch: usize, bytes: &[u8]) -> PromotionOutcome {
        let _s = span(Category::Fleet, "promotion_offer");
        let mut cursor = bytes;
        let mut served = match self.fleet.spec().instantiate_from(&mut cursor) {
            Ok(served) => served,
            Err(e) => {
                return PromotionOutcome::Rejected {
                    epoch,
                    reason: format!("checkpoint unreadable: {e}"),
                }
            }
        };
        let accuracy = match self.gate.check(&mut served.model) {
            Ok(acc) => acc,
            Err(reason) => return PromotionOutcome::Rejected { epoch, reason },
        };
        match self.fleet.promote(bytes) {
            Ok((version, requeued)) => {
                PromotionOutcome::Promoted { version, epoch, accuracy, requeued }
            }
            Err(e) => PromotionOutcome::Rejected { epoch, reason: format!("swap failed: {e}") },
        }
    }
}

/// One rolling checkpoint from a live training run.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Training epochs completed when the snapshot was taken.
    pub epoch: usize,
    /// Serialized parameters.
    pub bytes: Vec<u8>,
    /// Whether this is the run's final checkpoint.
    pub is_final: bool,
}

/// Starts a `dist-train` run on a background thread, streaming its
/// epoch-boundary checkpoints (every `every` epochs) plus the final
/// checkpoint as [`Candidate`]s. Join the handle for the
/// [`DistOutcome`]; the channel closes when training ends.
pub fn dist_training_stream(
    host: FrameworkKind,
    setting: DefaultSetting,
    dataset: DatasetKind,
    scale: Scale,
    seed: u64,
    every: usize,
    dcfg: DistConfig,
) -> (JoinHandle<Result<DistOutcome, String>>, mpsc::Receiver<Candidate>) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let every = every.max(1);
        let outcome = run_dist_training_observed(
            host,
            setting,
            dataset,
            scale,
            seed,
            &dcfg,
            Some(every),
            |epoch, bytes| {
                // A gone receiver just means nobody is promoting
                // anymore; training carries on regardless.
                let _ = tx.send(Candidate { epoch, bytes, is_final: false });
            },
        );
        if let Ok(out) = &outcome {
            let iters_per_epoch =
                (scale.train_samples(dataset) / setting.training().batch_size).max(1);
            let epoch = out.executed_iterations / iters_per_epoch;
            let _ = tx.send(Candidate { epoch, bytes: out.checkpoint.clone(), is_final: true });
        }
        outcome
    });
    (handle, rx)
}
