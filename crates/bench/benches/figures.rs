//! The paper harness: regenerates **every table and figure** of the
//! paper's evaluation section and prints them in order.
//!
//! ```sh
//! DLBENCH_SCALE=small cargo bench --bench figures          # default
//! DLBENCH_SCALE=tiny  cargo bench --bench figures          # quick pass
//! cargo bench --bench figures -- fig_5 table_viii          # a subset
//! ```
//!
//! Accuracy columns are measured by really training the scaled
//! configurations; time columns are simulated for the full paper-scale
//! schedules on the modelled Xeon E5-1620 / GTX 1080 Ti (see
//! `dlbench-simtime`). JSON copies of every report are written to
//! `target/dlbench-reports/`.

use dlbench_core::{BenchmarkRunner, ExperimentId};
use dlbench_frameworks::Scale;
use dlbench_trace::Stopwatch;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    if std::env::args().any(|a| a == "--list") {
        println!("figures: bench");
        return;
    }
    let scale = Scale::from_env();
    let mut runner = BenchmarkRunner::new(scale, 42);
    let out_dir = std::path::Path::new("target").join("dlbench-reports");
    let _ = std::fs::create_dir_all(&out_dir);

    let selected: Vec<ExperimentId> = if args.is_empty() {
        ExperimentId::ALL.to_vec()
    } else {
        args.iter()
            .filter_map(|key| {
                let id = ExperimentId::from_key(key);
                if id.is_none() {
                    eprintln!("unknown experiment key: {key}");
                }
                id
            })
            .collect()
    };

    println!("DLBench paper harness — scale {scale:?}, seed 42");
    println!("regenerating {} paper artifacts\n", selected.len());
    let started = Stopwatch::start();
    for id in selected {
        let t0 = Stopwatch::start();
        let report = id.run(&mut runner);
        println!("{}", report.render());
        println!("  [{} regenerated in {:.1}s]\n", id.key(), t0.elapsed_s());
        let path = out_dir.join(format!("{}.json", id.key()));
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("could not write {}: {e}", path.display());
        }
    }
    println!(
        "done: {} training cells, {:.1}s total; JSON reports in {}",
        runner.trained_cells(),
        started.elapsed_s(),
        out_dir.display()
    );
}
