//! Parameter checkpointing.
//!
//! DLBench models are rebuilt from [`crate::Network`]-producing
//! architecture specs, so a checkpoint only needs the parameter tensors
//! — shapes are validated against the freshly built network on load.
//! The format is a versioned, self-describing binary layout (no external
//! dependencies): magic, version, parameter count, then per parameter a
//! rank-prefixed shape and little-endian `f32` data.

use crate::network::Network;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"DLBENCH1";

/// The format-family prefix shared by all checkpoint versions; the
/// eighth magic byte is the ASCII version digit.
const MAGIC_PREFIX: &[u8; 7] = b"DLBENCH";

/// Highest tensor rank a checkpoint may declare. The header is read
/// before shapes are validated against the network, so an adversarial
/// or corrupt rank field must be rejected *before* it sizes an
/// allocation.
const MAX_RANK: usize = 8;

/// Errors from checkpoint encoding/decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a DLBench checkpoint (bad magic or version).
    BadFormat(String),
    /// Checkpoint does not match the network's parameter structure.
    StructureMismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadFormat(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::StructureMismatch(m) => {
                write!(f, "checkpoint/network mismatch: {m}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes all parameters of `net` to `w`.
pub fn save_parameters(net: &mut Network, w: &mut impl Write) -> Result<(), CheckpointError> {
    let params = net.params();
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in &params {
        let shape = p.value.shape();
        w.write_all(&(shape.len() as u32).to_le_bytes())?;
        for &d in shape {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in p.value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes all parameters of `net` to a file at `path`.
pub fn save_parameters_path(
    net: &mut Network,
    path: impl AsRef<std::path::Path>,
) -> Result<(), CheckpointError> {
    let mut file = std::fs::File::create(path)?;
    save_parameters(net, &mut file)
}

/// Loads parameters into `net` from a file at `path`, validating
/// shapes (the `serve` registry's and the CLI `--load` flag's entry
/// point).
pub fn load_parameters_path(
    net: &mut Network,
    path: impl AsRef<std::path::Path>,
) -> Result<(), CheckpointError> {
    let mut file = std::fs::File::open(path)?;
    load_parameters(net, &mut std::io::BufReader::new(&mut file))
}

/// Loads parameters from `r` into `net`, validating shapes.
pub fn load_parameters(net: &mut Network, r: &mut impl Read) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic[..7] != MAGIC_PREFIX {
        return Err(CheckpointError::BadFormat(format!("magic {:?} != {:?}", &magic, MAGIC)));
    }
    if magic[7] != MAGIC[7] {
        return Err(CheckpointError::BadFormat(format!(
            "unsupported checkpoint version {:?} (this build reads version {:?})",
            magic[7] as char, MAGIC[7] as char
        )));
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;
    let mut params = net.params();
    if count != params.len() {
        return Err(CheckpointError::StructureMismatch(format!(
            "checkpoint has {count} parameters, network has {}",
            params.len()
        )));
    }
    let mut u64buf = [0u8; 8];
    for (i, p) in params.iter_mut().enumerate() {
        r.read_exact(&mut u32buf)?;
        let rank = u32::from_le_bytes(u32buf) as usize;
        if rank > MAX_RANK {
            return Err(CheckpointError::BadFormat(format!(
                "parameter {i}: rank {rank} exceeds the format maximum {MAX_RANK} \
                 (corrupt header?)"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut u64buf)?;
            shape.push(u64::from_le_bytes(u64buf) as usize);
        }
        if shape != p.value.shape() {
            return Err(CheckpointError::StructureMismatch(format!(
                "parameter {i}: checkpoint shape {shape:?} != network shape {:?}",
                p.value.shape()
            )));
        }
        for v in p.value.data_mut() {
            r.read_exact(&mut u32buf)?;
            *v = f32::from_le_bytes(u32buf);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Initializer, Linear, Relu};
    use dlbench_tensor::{SeededRng, Tensor};

    fn net(seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        let mut net = Network::new("ckpt");
        net.push(Linear::new(4, 6, Initializer::Xavier, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(6, 3, Initializer::Xavier, &mut rng));
        net
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut a, &mut buf).unwrap();
        let mut b = net(2); // differently initialized
        let mut rng = SeededRng::new(9);
        let x = Tensor::randn(&[2, 4], 0.0, 1.0, &mut rng);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));
        load_parameters(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = net(1);
        let garbage = b"NOTADLB1rest".to_vec();
        let err = load_parameters(&mut b, &mut garbage.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)));
    }

    #[test]
    fn rejects_structure_mismatch() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut a, &mut buf).unwrap();
        // A network with different layer widths must refuse the load.
        let mut rng = SeededRng::new(3);
        let mut other = Network::new("other");
        other.push(Linear::new(4, 5, Initializer::Xavier, &mut rng));
        other.push(Linear::new(5, 3, Initializer::Xavier, &mut rng));
        let err = load_parameters(&mut other, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)));
    }

    #[test]
    fn path_roundtrip_restores_outputs() {
        let dir = std::env::temp_dir().join("dlbench-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip-{}.ckpt", std::process::id()));
        let mut a = net(5);
        save_parameters_path(&mut a, &path).unwrap();
        let mut b = net(6);
        load_parameters_path(&mut b, &path).unwrap();
        let mut rng = SeededRng::new(11);
        let x = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_path_is_io_error() {
        let mut b = net(1);
        let err = load_parameters_path(&mut b, "/nonexistent/dlbench.ckpt").unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = net(2);
        let err = load_parameters(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn every_truncation_point_errors_never_panics() {
        // Exhaustive negative path: cutting the stream after any byte
        // count must produce a CheckpointError (Io for short reads,
        // BadFormat for a mangled header) — never a panic or an Ok.
        let mut a = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut a, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let mut b = net(2);
            let err = load_parameters(&mut b, &mut buf[..cut].as_ref());
            assert!(err.is_err(), "truncation at byte {cut} must fail");
        }
    }

    #[test]
    fn rejects_future_version_with_distinct_message() {
        let mut a = net(1);
        let mut buf = Vec::new();
        save_parameters(&mut a, &mut buf).unwrap();
        buf[7] = b'2'; // DLBENCH2: right family, future version
        let mut b = net(1);
        let err = load_parameters(&mut b, &mut buf.as_slice()).unwrap_err();
        match err {
            CheckpointError::BadFormat(msg) => {
                assert!(msg.contains("version"), "version error should say so: {msg}")
            }
            other => panic!("expected BadFormat, got {other}"),
        }
    }

    #[test]
    fn rejects_rank_bomb_without_allocating() {
        // A corrupt rank field (here u32::MAX) must be rejected by the
        // sanity cap before it can size a shape allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DLBENCH1");
        buf.extend_from_slice(&4u32.to_le_bytes()); // param count matches net()
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // rank bomb
        let mut b = net(1);
        let err = load_parameters(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");
    }

    #[test]
    fn rejects_dimension_mismatch_from_corrupt_dims() {
        // Plausible rank but absurd dimension values: caught by the
        // shape comparison against the freshly built network.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DLBENCH1");
        buf.extend_from_slice(&4u32.to_le_bytes()); // param count matches net()
        buf.extend_from_slice(&2u32.to_le_bytes()); // rank 2
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&7u64.to_le_bytes());
        let mut b = net(1);
        let err = load_parameters(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
    }

    #[test]
    fn empty_stream_is_io_error() {
        let mut b = net(1);
        let err = load_parameters(&mut b, &mut [].as_ref()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
