//! Post-training quantization: calibration passes and checkpoint entry
//! points.

use crate::layers::{QConv1dBank, QConv2d, QEmbedding, QLayer, QLinear};
use crate::network::{LayerCalibration, QuantizedNetwork};
use crate::observer::RangeObserver;
use dlbench_data::{DatasetKind, Preprocessing};
use dlbench_frameworks::{trainer, DefaultSetting, FrameworkKind, Scale};
use dlbench_nn::{
    checkpoint_version, load_parameters, load_quantized, CheckpointError, Conv1dBank, Conv2d,
    Embedding, Layer, LayerCost, Linear, Network,
};
use dlbench_tensor::Tensor;
use dlbench_trace::{span, Category};

/// Calibration hyperparameters for post-training quantization.
#[derive(Debug, Clone)]
pub struct QuantConfig {
    /// Symmetric percentile the range observers track (`0.999` keeps
    /// the [0.1%, 99.9%] span of each batch).
    pub percentile: f32,
    /// EMA momentum folding per-batch percentiles into the running
    /// range.
    pub momentum: f32,
    /// Number of held-out training samples in the calibration shard.
    pub calib_samples: usize,
    /// Batch size the calibration pass streams with.
    pub calib_batch: usize,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self { percentile: 0.999, momentum: 0.9, calib_samples: 256, calib_batch: 32 }
    }
}

/// Whether the quantization pass replaces this layer with an int8
/// counterpart (everything else stays an fp32 fallback).
fn quantizable(layer: &dyn Layer) -> bool {
    layer.as_any().is::<Linear>()
        || layer.as_any().is::<Conv2d>()
        || layer.as_any().is::<Embedding>()
        || layer.as_any().is::<Conv1dBank>()
}

/// Slices sample `range` out of a `[N, ...]` calibration tensor as its
/// own batch tensor.
fn batch_of(calib: &Tensor, range: std::ops::Range<usize>) -> Tensor {
    let sample = calib.len() / calib.shape()[0];
    let mut shape = calib.shape().to_vec();
    shape[0] = range.len();
    let data = calib.data()[range.start * sample..range.end * sample].to_vec();
    Tensor::from_vec(&shape, data).expect("batch slice shape is consistent")
}

/// Quantizes a trained fp32 network against a calibration tensor
/// (`[N, ...]`, already preprocessed with the pipeline the network was
/// trained under).
///
/// Two deterministic streaming passes over the shard: the first feeds
/// every batch through the network layer by layer, folding the inputs
/// of each quantizable layer into its [`RangeObserver`]; the second
/// replays the stream against the *final* calibrated ranges to count
/// the fraction of values each quantizer clips. `Linear` and `Conv2d`
/// layers are then rebuilt as int8 counterparts and everything else is
/// carried over as an fp32 fallback (requantize-between-layers: each
/// quantized layer re-quantizes its fp32 input with its own calibrated
/// quantizer).
///
/// # Panics
///
/// Panics if the calibration tensor is empty or its sample shape does
/// not feed the network.
pub fn quantize_network(net: Network, calib: &Tensor, cfg: &QuantConfig) -> QuantizedNetwork {
    assert!(calib.rank() >= 2 && calib.shape()[0] > 0, "calibration tensor must be [N, ...]");
    let _s = span(Category::Train, "quantize.calibrate");
    let name = net.name().to_string();
    let mut layers = net.into_layers();
    let mut observers: Vec<Option<RangeObserver>> = layers
        .iter()
        .map(|l| quantizable(l.as_ref()).then(|| RangeObserver::new(cfg.percentile, cfg.momentum)))
        .collect();

    let n = calib.shape()[0];
    let batch = cfg.calib_batch.max(1);
    // Pass 1: record per-layer input ranges.
    let mut start = 0;
    while start < n {
        let end = (start + batch).min(n);
        let mut x = batch_of(calib, start..end);
        for (layer, obs) in layers.iter_mut().zip(&mut observers) {
            if let Some(o) = obs {
                o.observe(x.data());
            }
            x = layer.forward(&x, false);
        }
        start = end;
    }
    // Pass 2: count what the final calibrated ranges clip.
    let mut clipped = vec![0u64; layers.len()];
    let mut totals = vec![0u64; layers.len()];
    let mut start = 0;
    while start < n {
        let end = (start + batch).min(n);
        let mut x = batch_of(calib, start..end);
        for (li, (layer, obs)) in layers.iter_mut().zip(&observers).enumerate() {
            if let Some(o) = obs {
                clipped[li] += o.count_clipped(x.data());
                totals[li] += x.len() as u64;
            }
            x = layer.forward(&x, false);
        }
        start = end;
    }

    let mut qlayers = Vec::new();
    let mut calibration = Vec::new();
    for (li, (layer, obs)) in layers.into_iter().zip(observers).enumerate() {
        let Some(o) = obs else {
            qlayers.push(QLayer::Fallback(layer));
            continue;
        };
        let (scale, zero_point) = o.affine_params();
        let (observed_min, observed_max) = o.observed();
        let (range_lo, range_hi) = o.range();
        let label;
        if layer.as_any().is::<Linear>() {
            let lin = layer.into_any().downcast::<Linear>().expect("probed as Linear");
            label = format!("linear[{li}]");
            qlayers.push(QLayer::Linear(QLinear::from_fp32(&lin, scale, zero_point)));
        } else if layer.as_any().is::<Conv2d>() {
            let conv = layer.into_any().downcast::<Conv2d>().expect("probed as Conv2d");
            label = format!("conv2d[{li}]");
            qlayers.push(QLayer::Conv2d(QConv2d::from_fp32(&conv, scale, zero_point)));
        } else if layer.as_any().is::<Embedding>() {
            // The observer saw token ids, not activations; the lookup
            // needs no input quantizer, but the calibration record keeps
            // the observed id range for the report.
            let emb = layer.into_any().downcast::<Embedding>().expect("probed as Embedding");
            label = format!("embedding[{li}]");
            qlayers.push(QLayer::Embedding(QEmbedding::from_fp32(&emb)));
        } else {
            let bank = layer.into_any().downcast::<Conv1dBank>().expect("probed as Conv1dBank");
            label = format!("conv1d_bank[{li}]");
            qlayers.push(QLayer::Conv1dBank(QConv1dBank::from_fp32(&bank, scale, zero_point)));
        }
        calibration.push(LayerCalibration {
            layer: label,
            observed_min,
            observed_max,
            range_lo,
            range_hi,
            scale,
            zero_point,
            clipped_fraction: clipped[li] as f32 / totals[li].max(1) as f32,
        });
    }
    QuantizedNetwork::new(name, qlayers, calibration)
}

/// Builds the calibration shard for a cell: the **tail** of its
/// training split (never the test set — evaluation data must stay
/// unseen), preprocessed with the exact serving pipeline the cell uses.
/// The data seed is framework-independent, so this reproduces the very
/// samples the cell trained on.
pub fn calibration_shard(
    host: FrameworkKind,
    setting: &DefaultSetting,
    dataset: DatasetKind,
    scale: Scale,
    seed: u64,
    samples: usize,
) -> Tensor {
    let (train, _test) = trainer::generate_data(dataset, scale, seed);
    let n = train.len();
    let take = samples.clamp(1, n);
    let idx: Vec<usize> = (n - take..n).collect();
    let (images, _labels) = train.gather(&idx);
    let preprocessing = trainer::effective_preprocessing(host, setting, dataset);
    let channel_means = if preprocessing == Preprocessing::MeanSubtract {
        Preprocessing::channel_means(&train)
    } else {
        Vec::new()
    };
    preprocessing.apply(&images, &channel_means)
}

/// Quantizes a trained cell model end to end: generates the cell's
/// calibration shard and runs [`quantize_network`].
pub fn quantize_trained(
    net: Network,
    host: FrameworkKind,
    setting: &DefaultSetting,
    dataset: DatasetKind,
    scale: Scale,
    seed: u64,
    cfg: &QuantConfig,
) -> QuantizedNetwork {
    let shard = calibration_shard(host, setting, dataset, scale, seed, cfg.calib_samples);
    quantize_network(net, &shard, cfg)
}

/// Builds a [`QuantizedNetwork`] from **any** cell checkpoint stream.
///
/// * Version-1 (fp32) checkpoints are loaded into the cell's freshly
///   built architecture and calibrated/quantized on the spot.
/// * Version-2 (quantized) checkpoints are adopted bit-for-bit via
///   [`QuantizedNetwork::from_entries`] — no re-calibration.
///
/// All failure modes (wrong magic, truncation, structure mismatch) are
/// structured [`CheckpointError`]s.
pub fn quantize_checkpoint(
    host: FrameworkKind,
    setting: &DefaultSetting,
    dataset: DatasetKind,
    scale: Scale,
    seed: u64,
    r: &mut dyn std::io::Read,
    cfg: &QuantConfig,
) -> Result<QuantizedNetwork, CheckpointError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    match checkpoint_version(&bytes) {
        Some('1') => {
            let mut net = trainer::build_cell_model(host, setting, dataset, scale, seed);
            load_parameters(&mut net, &mut bytes.as_slice())?;
            Ok(quantize_trained(net, host, setting, dataset, scale, seed, cfg))
        }
        Some('2') => {
            let entries = load_quantized(&mut bytes.as_slice())?;
            let net = trainer::build_cell_model(host, setting, dataset, scale, seed);
            QuantizedNetwork::from_entries(net, &entries)
        }
        _ => Err(CheckpointError::BadFormat(
            "not a DLBench checkpoint (unrecognized magic)".to_string(),
        )),
    }
}

/// [`quantize_checkpoint`] over a checkpoint file.
#[allow(clippy::too_many_arguments)]
pub fn quantize_checkpoint_path(
    host: FrameworkKind,
    setting: &DefaultSetting,
    dataset: DatasetKind,
    scale: Scale,
    seed: u64,
    path: impl AsRef<std::path::Path>,
    cfg: &QuantConfig,
) -> Result<QuantizedNetwork, CheckpointError> {
    let mut file = std::fs::File::open(path)?;
    quantize_checkpoint(host, setting, dataset, scale, seed, &mut file, cfg)
}

/// Splits a network's inference cost into the part the int8 path
/// absorbs (`Linear`/`Conv2d`) and the fp32 fallback remainder, for the
/// analytical int8 serving-time model
/// (`CostModel::inference_seconds_batched_int8`).
pub fn cost_split(net: &Network, input_shape: &[usize]) -> (LayerCost, LayerCost) {
    let mut shape = input_shape.to_vec();
    let mut quantized = LayerCost::default();
    let mut fallback = LayerCost::default();
    for layer in net.layers() {
        let cost = layer.cost(&shape);
        if quantizable(layer.as_ref()) {
            quantized = quantized.merge(cost);
        } else {
            fallback = fallback.merge(cost);
        }
        shape = layer.output_shape(&shape);
    }
    (quantized, fallback)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlbench_nn::{save_parameters, save_quantized, Initializer};
    use dlbench_tensor::SeededRng;

    fn cell() -> (FrameworkKind, DefaultSetting, DatasetKind, Scale, u64) {
        let host = FrameworkKind::TensorFlow;
        let setting = DefaultSetting::new(host, DatasetKind::Mnist);
        (host, setting, DatasetKind::Mnist, Scale::Tiny, 7)
    }

    #[test]
    fn quantized_outputs_track_fp32_and_calibration_is_populated() {
        let (host, setting, dataset, scale, seed) = cell();
        let mut net = trainer::build_cell_model(host, &setting, dataset, scale, seed);
        let shard = calibration_shard(host, &setting, dataset, scale, seed, 64);
        let y32 = net.forward(&shard, false);
        let cfg = QuantConfig { calib_samples: 64, ..QuantConfig::default() };
        let mut q = quantize_network(net, &shard, &cfg);
        let y8 = q.forward(&shard, false);
        assert_eq!(y8.shape(), y32.shape());
        assert!(q.num_quantized() >= 2, "cell models have conv and linear layers");
        assert_eq!(q.calibration().len(), q.num_quantized());
        for c in q.calibration() {
            assert!(c.scale > 0.0 && c.scale.is_finite());
            assert!((0.0..=1.0).contains(&c.clipped_fraction), "{c:?}");
            assert!(c.range_lo <= 0.0 && c.range_hi >= 0.0, "{c:?}");
        }
        // Same argmax on most rows: logits shift only by quantization
        // noise.
        let agree =
            y32.argmax_rows().iter().zip(y8.argmax_rows()).filter(|(a, b)| **a == *b).count();
        assert!(agree * 10 >= y32.shape()[0] * 8, "agreement {agree}/{}", y32.shape()[0]);
    }

    #[test]
    fn quantize_checkpoint_accepts_both_versions_bitwise() {
        let (host, setting, dataset, scale, seed) = cell();
        let mut net = trainer::build_cell_model(host, &setting, dataset, scale, seed);
        let mut v1 = Vec::new();
        save_parameters(&mut net, &mut v1).unwrap();
        let cfg = QuantConfig { calib_samples: 32, ..QuantConfig::default() };
        let mut q1 =
            quantize_checkpoint(host, &setting, dataset, scale, seed, &mut v1.as_slice(), &cfg)
                .unwrap();
        let mut v2 = Vec::new();
        save_quantized(&q1.to_entries(), &mut v2).unwrap();
        let mut q2 =
            quantize_checkpoint(host, &setting, dataset, scale, seed, &mut v2.as_slice(), &cfg)
                .unwrap();
        let shard = calibration_shard(host, &setting, dataset, scale, seed, 8);
        let a = q1.forward(&shard, false);
        let b = q2.forward(&shard, false);
        assert!(a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(q1.calibration(), q2.calibration());
    }

    #[test]
    fn text_cell_quantizes_end_to_end_and_roundtrips_both_versions() {
        let host = FrameworkKind::Torch;
        let setting = DefaultSetting::new(host, DatasetKind::Imdb);
        let (dataset, scale, seed) = (DatasetKind::Imdb, Scale::Tiny, 11);
        let mut net = trainer::build_cell_model(host, &setting, dataset, scale, seed);
        let mut v1 = Vec::new();
        save_parameters(&mut net, &mut v1).unwrap();
        let cfg = QuantConfig { calib_samples: 32, ..QuantConfig::default() };
        let mut q1 =
            quantize_checkpoint(host, &setting, dataset, scale, seed, &mut v1.as_slice(), &cfg)
                .unwrap();
        // The embedding and the conv bank both land on the int8 path.
        let names: Vec<String> = q1.describe();
        assert!(names.iter().any(|n| n.starts_with("qembedding")), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("qconv1d_bank")), "{names:?}");
        let mut v2 = Vec::new();
        save_quantized(&q1.to_entries(), &mut v2).unwrap();
        let mut q2 =
            quantize_checkpoint(host, &setting, dataset, scale, seed, &mut v2.as_slice(), &cfg)
                .unwrap();
        let shard = calibration_shard(host, &setting, dataset, scale, seed, 8);
        let a = q1.forward(&shard, false);
        let b = q2.forward(&shard, false);
        assert!(a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(q1.calibration(), q2.calibration());
        // The fp32 network and its quantized twin agree on most rows.
        let y32 = {
            let mut net = trainer::build_cell_model(host, &setting, dataset, scale, seed);
            load_parameters(&mut net, &mut v1.as_slice()).unwrap();
            net.forward(&shard, false)
        };
        let agree =
            y32.argmax_rows().iter().zip(a.argmax_rows()).filter(|(x, y)| **x == *y).count();
        assert!(agree * 10 >= y32.shape()[0] * 8, "agreement {agree}/{}", y32.shape()[0]);
    }

    #[test]
    fn quantize_checkpoint_rejects_garbage_with_structured_error() {
        let (host, setting, dataset, scale, seed) = cell();
        let cfg = QuantConfig::default();
        let err = quantize_checkpoint(
            host,
            &setting,
            dataset,
            scale,
            seed,
            &mut b"not a checkpoint".as_slice(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");
    }

    #[test]
    fn cost_split_partitions_the_total() {
        let (host, setting, dataset, scale, seed) = cell();
        let net = trainer::build_cell_model(host, &setting, dataset, scale, seed);
        let size = scale.image_size(dataset);
        let shape = [1, dataset.channels(), size, size];
        let (q, f) = cost_split(&net, &shape);
        let total = net.cost(&shape);
        assert_eq!(q.fwd_flops + f.fwd_flops, total.fwd_flops);
        assert_eq!(q.fwd_kernels + f.fwd_kernels, total.fwd_kernels);
        assert!(q.fwd_flops > f.fwd_flops, "GEMM-shaped layers dominate");
    }

    #[test]
    fn hand_built_network_quantizes_with_fallbacks_preserved() {
        let mut rng = SeededRng::new(3);
        let mut net = Network::new("mlp");
        net.push(Linear::new(12, 9, Initializer::Xavier, &mut rng));
        net.push(dlbench_nn::Relu::new());
        net.push(Linear::new(9, 4, Initializer::Xavier, &mut rng));
        let calib = Tensor::randn(&[40, 12], 0.0, 1.0, &mut rng);
        let mut q = quantize_network(net, &calib, &QuantConfig::default());
        assert_eq!(q.len(), 3);
        assert_eq!(q.num_quantized(), 2);
        let x = Tensor::randn(&[5, 12], 0.0, 1.0, &mut rng);
        assert_eq!(q.forward(&x, false).shape(), &[5, 4]);
    }
}
