//! Tracing overhead on the kernel hot path: the same GEMM and conv
//! workloads with the recorder disabled (the default, a relaxed atomic
//! load per span site) and enabled (per-thread ring-buffer writes).
//! `BENCH_trace.json` pins the disabled-mode cost — the whole point of
//! runtime-configured tracing is that shipping the instrumentation is
//! free when nobody is looking.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlbench_bench::BENCH_SEED;
use dlbench_tensor::{gemm, im2col, Conv2dGeometry, SeededRng, Tensor};
use dlbench_trace::TraceConfig;

fn bench_gemm_tracing(c: &mut Criterion) {
    let mut rng = SeededRng::new(BENCH_SEED);
    let n = 128usize;
    let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
    let mut out = vec![0.0f32; n * n];
    let mut group = c.benchmark_group("trace_gemm_128");
    dlbench_trace::configure(TraceConfig::Off);
    group.bench_function("tracing_off", |bench| {
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            gemm(n, n, n, black_box(a.data()), black_box(b.data()), &mut out);
        })
    });
    dlbench_trace::configure(TraceConfig::on());
    dlbench_trace::clear();
    group.bench_function("tracing_on", |bench| {
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            gemm(n, n, n, black_box(a.data()), black_box(b.data()), &mut out);
        })
    });
    dlbench_trace::configure(TraceConfig::Off);
    dlbench_trace::clear();
    group.finish();
}

fn bench_im2col_tracing(c: &mut Criterion) {
    let mut rng = SeededRng::new(BENCH_SEED);
    // Caffe LeNet conv1 geometry: a small kernel, so per-call tracing
    // overhead is as visible as it ever gets on this hot path.
    let geo = Conv2dGeometry {
        in_channels: 1,
        in_h: 28,
        in_w: 28,
        kernel_h: 5,
        kernel_w: 5,
        stride: 1,
        pad: 0,
    };
    let input = Tensor::randn(&[1, 28 * 28], 0.0, 1.0, &mut rng);
    let mut cols = vec![0.0f32; geo.patch_len() * geo.out_plane()];
    let mut group = c.benchmark_group("trace_im2col_lenet_conv1");
    dlbench_trace::configure(TraceConfig::Off);
    group.bench_function("tracing_off", |bench| {
        bench.iter(|| im2col(&geo, black_box(input.data()), black_box(&mut cols)))
    });
    dlbench_trace::configure(TraceConfig::on());
    dlbench_trace::clear();
    group.bench_function("tracing_on", |bench| {
        bench.iter(|| im2col(&geo, black_box(input.data()), black_box(&mut cols)))
    });
    dlbench_trace::configure(TraceConfig::Off);
    dlbench_trace::clear();
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm_tracing, bench_im2col_tracing
}
criterion_main!(benches);
