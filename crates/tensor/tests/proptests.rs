//! Property-based tests for the tensor substrate.

use dlbench_tensor::{
    col2im, dequantize_i8, gemm, gemm_i8, im2col, par, quantize_i8, Conv2dGeometry, SeededRng,
    Tensor,
};
use proptest::prelude::*;

/// Random i8 slice drawn through the repo's seeded RNG, so shrinking
/// stays deterministic.
fn rand_i8(rng: &mut SeededRng, len: usize) -> Vec<i8> {
    (0..len).map(|_| (rng.normal(0.0, 48.0) as i32).clamp(-128, 127) as i8).collect()
}

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reshape_roundtrips(dims in small_dims(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
        let flat = t.flatten();
        let back = flat.reshape(&dims).unwrap();
        prop_assert_eq!(back.data(), t.data());
        prop_assert_eq!(back.shape(), t.shape());
    }

    #[test]
    fn add_commutes_and_sub_inverts(dims in small_dims(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_distributes_over_add(dims in small_dims(), k in -3.0f32..3.0, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&dims, 0.0, 1.0, &mut rng);
        let lhs = a.add(&b).unwrap().scale(k);
        let rhs = a.scale(k).add(&b.scale(k)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_matches_naive(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let c = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let expect: f32 = (0..k).map(|kk| a.at(&[i, kk]) * b.at(&[kk, j])).sum();
                prop_assert!((c.at(&[i, j]) - expect).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gemm_linear_in_lhs(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..500) {
        // gemm(a1 + a2, b) == gemm(a1, b) + gemm(a2, b)
        let mut rng = SeededRng::new(seed);
        let a1 = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let a2 = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let mut lhs = vec![0.0f32; m * n];
        gemm(m, k, n, a1.add(&a2).unwrap().data(), b.data(), &mut lhs);
        let mut r1 = vec![0.0f32; m * n];
        let mut r2 = vec![0.0f32; m * n];
        gemm(m, k, n, a1.data(), b.data(), &mut r1);
        gemm(m, k, n, a2.data(), b.data(), &mut r2);
        for ((x, y), z) in lhs.iter().zip(&r1).zip(&r2) {
            prop_assert!((x - (y + z)).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(n in 1usize..8, c in 2usize..12, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let logits = Tensor::randn(&[n, c], 0.0, 5.0, &mut rng);
        let p = logits.softmax_rows();
        for i in 0..n {
            let row = &p.data()[i * c..(i + 1) * c];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn entropy_bounded_by_log_bins(len in 1usize..200, bins in 2usize..32, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::rand_uniform(&[len], 0.0, 1.0, &mut rng);
        let h = t.histogram_entropy(bins);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (bins as f32).log2() + 1e-4);
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geo = Conv2dGeometry {
            in_channels: c, in_h: h, in_w: w,
            kernel_h: k, kernel_w: k, stride, pad,
        };
        let mut rng = SeededRng::new(seed);
        let x: Vec<f32> = (0..c * h * w).map(|_| rng.normal(0.0, 1.0)).collect();
        let y: Vec<f32> =
            (0..geo.patch_len() * geo.out_plane()).map(|_| rng.normal(0.0, 1.0)).collect();
        let mut cols = vec![0.0f32; y.len()];
        im2col(&geo, &x, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();
        let mut grad = vec![0.0f32; x.len()];
        col2im(&geo, &y, &mut grad);
        let rhs: f32 = x.iter().zip(&grad).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn im2col_col2im_roundtrip_identity_when_disjoint(
        c in 1usize..3, oh in 1usize..4, ow in 1usize..4, k in 1usize..4, seed in 0u64..500,
    ) {
        // stride == kernel, no padding: every pixel lands in exactly
        // one patch, so the col2im(im2col(x)) round trip must return x
        // bitwise — gradients pushed through the pair are preserved.
        let (h, w) = (oh * k, ow * k);
        let geo = Conv2dGeometry {
            in_channels: c, in_h: h, in_w: w,
            kernel_h: k, kernel_w: k, stride: k, pad: 0,
        };
        let mut rng = SeededRng::new(seed);
        let x: Vec<f32> = (0..c * h * w).map(|_| rng.normal(0.0, 1.0)).collect();
        let mut cols = vec![0.0f32; geo.patch_len() * geo.out_plane()];
        im2col(&geo, &x, &mut cols);
        let mut back = vec![0.0f32; x.len()];
        col2im(&geo, &cols, &mut back);
        prop_assert_eq!(&back[..], &x[..]);
    }

    #[test]
    fn im2col_col2im_roundtrip_scales_by_coverage(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        k in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..500,
    ) {
        // General geometry: the round trip multiplies each pixel by the
        // number of patches covering it (computable by pushing ones
        // through the same pair). No gradient is lost or invented.
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geo = Conv2dGeometry {
            in_channels: c, in_h: h, in_w: w,
            kernel_h: k, kernel_w: k, stride, pad,
        };
        let mut rng = SeededRng::new(seed);
        let x: Vec<f32> = (0..c * h * w).map(|_| rng.normal(0.0, 1.0)).collect();
        let n_cols = geo.patch_len() * geo.out_plane();

        let mut cols = vec![0.0f32; n_cols];
        im2col(&geo, &x, &mut cols);
        let mut back = vec![0.0f32; x.len()];
        col2im(&geo, &cols, &mut back);

        let ones = vec![1.0f32; x.len()];
        let mut ones_cols = vec![0.0f32; n_cols];
        im2col(&geo, &ones, &mut ones_cols);
        let mut coverage = vec![0.0f32; x.len()];
        col2im(&geo, &ones_cols, &mut coverage);

        for ((&b, &v), &cov) in back.iter().zip(&x).zip(&coverage) {
            prop_assert!(cov >= 0.0);
            prop_assert!((b - v * cov).abs() < 1e-4 * (1.0 + v.abs() * cov));
        }
    }

    #[test]
    fn argmax_is_maximal(len in 1usize..64, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::randn(&[len], 0.0, 1.0, &mut rng);
        let idx = t.argmax();
        prop_assert!(t.data().iter().all(|&v| v <= t.data()[idx]));
    }

    #[test]
    fn quantize_dequantize_roundtrip_within_one_lsb(
        values in prop::collection::vec(-1000.0f32..1000.0, 1..64),
        scale in 1e-3f32..8.0,
        zp in -128i32..=127,
    ) {
        // Values inside the representable affine range must come back
        // within one quantization step (the LSB, == scale); values
        // outside must come back as the clamped range boundary.
        let zp8 = zp as i8;
        let lo = (-128 - zp) as f32 * scale;
        let hi = (127 - zp) as f32 * scale;
        let mut q = vec![0i8; values.len()];
        quantize_i8(&values, scale, zp8, &mut q);
        let mut back = vec![0.0f32; values.len()];
        dequantize_i8(&q, scale, zp8, &mut back);
        for (&v, &r) in values.iter().zip(&back) {
            let target = v.clamp(lo, hi);
            prop_assert!(
                (r - target).abs() <= scale * (1.0 + 1e-4),
                "value {} came back as {} (target {}, scale {})", v, r, target, scale
            );
        }
    }

    #[test]
    fn gemm_i8_invariant_to_row_partition(
        m in 1usize..12, k in 1usize..24, n in 1usize..12,
        split in 0usize..12, seed in 0u64..500,
    ) {
        // Integer accumulation is exact, so computing any horizontal
        // split of the output separately must reproduce the one-shot
        // result bit for bit — the property thread partitioning
        // relies on.
        let split = split.min(m);
        let mut rng = SeededRng::new(seed);
        let a = rand_i8(&mut rng, m * k);
        let b = rand_i8(&mut rng, k * n);
        let mut full = vec![0i32; m * n];
        gemm_i8(m, k, n, &a, &b, &mut full);
        let mut parts = vec![0i32; m * n];
        gemm_i8(split, k, n, &a[..split * k], &b, &mut parts[..split * n]);
        gemm_i8(m - split, k, n, &a[split * k..], &b, &mut parts[split * n..]);
        prop_assert_eq!(full, parts);
    }
}

#[test]
fn gemm_i8_bitwise_invariant_to_thread_count() {
    // Big enough that the parallel path actually engages
    // (m*k*n > PAR_MIN_WORK); integer accumulation makes the result
    // exactly partition-order independent, so every thread count must
    // produce identical i32 bits.
    let (m, k, n) = (64usize, 128usize, 96usize);
    let mut rng = SeededRng::new(7);
    let a = rand_i8(&mut rng, m * k);
    let b = rand_i8(&mut rng, k * n);
    let run = |threads: usize| {
        par::set_threads(threads);
        let mut c = vec![0i32; m * n];
        gemm_i8(m, k, n, &a, &b, &mut c);
        par::set_threads(1);
        c
    };
    let serial = run(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(serial, run(threads), "gemm_i8 diverged at {threads} threads");
    }
}
