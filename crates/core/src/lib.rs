//! # dlbench-core
//!
//! The DLBench benchmark suite — the paper's primary contribution,
//! reimplemented as a library: the three metric groups (runtime
//! performance, learning accuracy, adversarial robustness), the
//! configuration-cross methodology (own / dataset-dependent /
//! framework-dependent default settings), an experiment registry with
//! one entry per table and figure of the paper, and report rendering.
//!
//! ## Architecture
//!
//! * [`runner::BenchmarkRunner`] — runs and memoizes training cells
//!   (device-independent), then derives per-device simulated timings.
//! * [`experiments`] — one function per paper table/figure, each
//!   returning a structured [`report::ExperimentReport`].
//! * [`registry`] — enumerates the experiments (`fig1` … `table_ix`) so
//!   harnesses can run "everything the paper reports".
//! * [`report`] — paper-style ASCII rendering plus JSON export.
//!
//! ## Example
//!
//! ```no_run
//! use dlbench_core::registry::ExperimentId;
//! use dlbench_core::runner::BenchmarkRunner;
//! use dlbench_frameworks::Scale;
//!
//! let mut runner = BenchmarkRunner::new(Scale::Small, 42);
//! let report = ExperimentId::Fig1.run(&mut runner);
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod experiments;
pub mod extensions;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod runner;
pub mod spec;

pub use dist::dist_report;
pub use metrics::{CellMetrics, Histogram, HistogramSummary};
pub use registry::ExperimentId;
pub use report::ExperimentReport;
pub use runner::BenchmarkRunner;
pub use spec::{ExperimentSpec, FleetBackend, Plan, ServeBackend, SpecRun};
