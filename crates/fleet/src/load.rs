//! Closed-loop load driver for an in-process [`Fleet`].
//!
//! `concurrency` worker threads pull request indices from a shared
//! counter and call [`Fleet::predict`] directly (no HTTP hop), which is
//! how the promotion tests hammer a fleet while checkpoints hot-swap
//! underneath. For open-loop, planet-scale rates use the simtime
//! simulator ([`crate::sim`]) instead.

use crate::fleet::Fleet;
use dlbench_core::{Histogram, HistogramSummary};
use dlbench_json::{JsonValue, ToJson};
use dlbench_serve::ServeError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// What a load run observed, aggregated across client threads.
#[derive(Debug, Clone)]
pub struct FleetLoadReport {
    /// Requests issued.
    pub sent: usize,
    /// Requests answered with a prediction.
    pub ok: usize,
    /// Requests shed (queue full).
    pub shed: usize,
    /// Requests failing for any other reason (must be zero in the
    /// hot-swap tests: a swap may shed under pressure, never error).
    pub errors: usize,
    /// Client-observed latency percentiles (milliseconds).
    pub latency_ms: Option<HistogramSummary>,
    /// Completed requests per model version observed by clients.
    pub by_version: BTreeMap<u64, usize>,
    /// Completed requests per replica id.
    pub by_replica: BTreeMap<usize, usize>,
}

impl FleetLoadReport {
    /// `shed / sent`.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        self.shed as f64 / self.sent as f64
    }
}

impl ToJson for FleetLoadReport {
    fn to_json(&self) -> JsonValue {
        let versions: Vec<JsonValue> = self
            .by_version
            .iter()
            .map(|(&v, &n)| {
                JsonValue::Object(vec![
                    ("version".into(), (v as usize).into()),
                    ("completed".into(), n.into()),
                ])
            })
            .collect();
        let replicas: Vec<JsonValue> = self
            .by_replica
            .iter()
            .map(|(&r, &n)| {
                JsonValue::Object(vec![
                    ("replica".into(), r.into()),
                    ("completed".into(), n.into()),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("sent".into(), self.sent.into()),
            ("ok".into(), self.ok.into()),
            ("shed".into(), self.shed.into()),
            ("errors".into(), self.errors.into()),
            ("shed_rate".into(), self.shed_rate().into()),
            (
                "latency_ms".into(),
                self.latency_ms.as_ref().map_or(JsonValue::Null, ToJson::to_json),
            ),
            ("by_version".into(), JsonValue::Array(versions)),
            ("by_replica".into(), JsonValue::Array(replicas)),
        ])
    }
}

/// Drives `requests` predictions at `fleet` from `concurrency` client
/// threads, cycling through `inputs`.
pub fn drive(
    fleet: &Fleet,
    inputs: &[Vec<f32>],
    requests: usize,
    concurrency: usize,
) -> FleetLoadReport {
    let concurrency = concurrency.clamp(1, requests.max(1));
    drive_inner(fleet, inputs, Some(requests), concurrency, None)
}

/// Drives predictions at `fleet` until `stop` flips true (the last
/// in-flight request per thread still completes). This is how the CLI
/// demo keeps traffic on the fleet for the whole promotion window, so
/// every hot swap happens under live load.
pub fn drive_until(
    fleet: &Fleet,
    inputs: &[Vec<f32>],
    concurrency: usize,
    stop: &AtomicBool,
) -> FleetLoadReport {
    drive_inner(fleet, inputs, None, concurrency.max(1), Some(stop))
}

fn drive_inner(
    fleet: &Fleet,
    inputs: &[Vec<f32>],
    requests: Option<usize>,
    concurrency: usize,
    stop: Option<&AtomicBool>,
) -> FleetLoadReport {
    assert!(!inputs.is_empty(), "need at least one input to send");
    let next = AtomicUsize::new(0);
    let mut per_thread: Vec<ThreadTally> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut tally = ThreadTally::default();
                    loop {
                        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if requests.is_some_and(|r| i >= r) {
                            break;
                        }
                        tally.sent += 1;
                        match fleet.predict(inputs[i % inputs.len()].clone()) {
                            Ok(p) => {
                                tally.ok += 1;
                                tally.latency.record(p.latency.as_secs_f64() * 1e3);
                                *tally.by_version.entry(p.version).or_insert(0) += 1;
                                *tally.by_replica.entry(p.replica).or_insert(0) += 1;
                            }
                            Err(ServeError::QueueFull) => tally.shed += 1,
                            Err(_) => tally.errors += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        for h in handles {
            per_thread.push(h.join().unwrap_or_default());
        }
    });

    let mut latency = Histogram::new();
    let mut by_version = BTreeMap::new();
    let mut by_replica = BTreeMap::new();
    let (mut sent, mut ok, mut shed, mut errors) = (0, 0, 0, 0);
    for t in per_thread {
        sent += t.sent;
        ok += t.ok;
        shed += t.shed;
        errors += t.errors;
        latency.merge(&t.latency);
        for (v, n) in t.by_version {
            *by_version.entry(v).or_insert(0) += n;
        }
        for (r, n) in t.by_replica {
            *by_replica.entry(r).or_insert(0) += n;
        }
    }
    FleetLoadReport {
        sent,
        ok,
        shed,
        errors,
        latency_ms: latency.summary(),
        by_version,
        by_replica,
    }
}

#[derive(Default)]
struct ThreadTally {
    sent: usize,
    ok: usize,
    shed: usize,
    errors: usize,
    latency: Histogram,
    by_version: BTreeMap<u64, usize>,
    by_replica: BTreeMap<usize, usize>,
}
