#!/usr/bin/env sh
# Repository gate: formatting, lints, build, and the tier-1 test suite.
# Everything runs with --locked against the committed Cargo.lock so the
# script works on hosts with no reachable cargo registry (the workspace
# has no external dependencies; the lockfile only pins workspace
# members).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --locked -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --locked

echo "==> cargo test"
cargo test --workspace --locked -q

echo "==> verify gate (gradcheck + goldens + guards)"
cargo test -p dlbench-verify --locked -q

echo "==> serve smoke (ephemeral port, concurrent predicts, metrics, drain)"
cargo test -p dlbench-serve --test smoke --locked -q

echo "==> profile smoke (traced training, nesting validated, Chrome JSON parses)"
cargo run -p dlbench-cli --release --locked -q -- profile --scale tiny \
    --trace target/dlbench-reports/TRACE_profile.json > /dev/null
test -s target/dlbench-reports/TRACE_profile.json

echo "==> trace overhead bench (tracing off vs on, BENCH_trace.json)"
cargo bench --bench trace --locked -- --quick > /dev/null

echo "==> OK"
