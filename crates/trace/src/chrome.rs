//! Chrome `trace_event` JSON export.
//!
//! The emitted document loads directly in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) (*Open trace file*). Spans
//! become complete (`"ph":"X"`) events with microsecond timestamps,
//! detached intervals become async (`"b"`/`"e"`) pairs so they never
//! distort same-track nesting, and counters become `"ph":"C"` samples.
//! JSON is emitted by hand — this crate stays dependency-free; the
//! format round-trips through `dlbench-json` in tests.

use crate::recorder::{Event, EventKind};

/// Escapes a string for direct inclusion inside JSON quotes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → the microsecond float Chrome's `ts`/`dur` expect.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

fn push_event_json(out: &mut Vec<String>, pid: u64, event: &Event) {
    let name = escape(&event.name);
    let cat = event.cat.as_str();
    match event.kind {
        EventKind::Span { start_ns, dur_ns, depth, flops } => {
            let mut args = format!("\"depth\": {depth}");
            if flops > 0 {
                args.push_str(&format!(", \"flops\": {flops}"));
            }
            out.push(format!(
                "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"ts\": {}, \"dur\": {}, \"args\": {{{args}}}}}",
                event.tid,
                us(start_ns),
                us(dur_ns)
            ));
        }
        EventKind::Interval { start_ns, dur_ns } => {
            // Async pair keyed by the globally unique record sequence.
            let id = format!("0x{:x}", event.seq);
            out.push(format!(
                "{{\"ph\": \"b\", \"pid\": {pid}, \"tid\": {}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"id\": \"{id}\", \"ts\": {}}}",
                event.tid,
                us(start_ns)
            ));
            out.push(format!(
                "{{\"ph\": \"e\", \"pid\": {pid}, \"tid\": {}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"id\": \"{id}\", \"ts\": {}}}",
                event.tid,
                us(start_ns + dur_ns)
            ));
        }
        EventKind::Counter { at_ns, value } => {
            out.push(format!(
                "{{\"ph\": \"C\", \"pid\": {pid}, \"tid\": {}, \"name\": \"{name}\", \
                 \"cat\": \"{cat}\", \"ts\": {}, \"args\": {{\"value\": {value}}}}}",
                event.tid,
                us(at_ns)
            ));
        }
    }
}

/// Builder for a multi-process Chrome trace — one `pid` per labeled
/// event stream (the `profile` command uses one process per framework
/// personality so all three timelines load side by side).
#[derive(Default)]
pub struct ChromeTraceDoc {
    events: Vec<String>,
}

impl ChromeTraceDoc {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one labeled process holding `events`. The label shows as
    /// the process name in the trace viewer.
    pub fn add_process(&mut self, pid: u64, label: &str, events: &[Event]) {
        self.events.push(format!(
            "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(label)
        ));
        for event in events {
            push_event_json(&mut self.events, pid, event);
        }
    }

    /// Renders the complete `trace_event` JSON document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str("    ");
            out.push_str(e);
            out.push_str(if i + 1 < self.events.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Renders `events` as a single-process Chrome trace document.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut doc = ChromeTraceDoc::new();
    doc.add_process(1, "dlbench", events);
    doc.render()
}
