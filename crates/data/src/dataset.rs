//! In-memory labelled image dataset.

use crate::stats::DatasetStats;
use dlbench_tensor::Tensor;

/// Which reference dataset a generated set stands in for.
///
/// `Ord` follows the paper's presentation order (MNIST first) so
/// keyed collections iterate deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetKind {
    /// MNIST stand-in (grayscale, sparse, low entropy).
    Mnist,
    /// CIFAR-10 stand-in (RGB, dense, high entropy).
    Cifar10,
}

impl DatasetKind {
    /// Channel count of the reference data.
    pub fn channels(&self) -> usize {
        match self {
            DatasetKind::Mnist => 1,
            DatasetKind::Cifar10 => 3,
        }
    }

    /// Native side length of the reference data (28 or 32).
    pub fn native_size(&self) -> usize {
        match self {
            DatasetKind::Mnist => 28,
            DatasetKind::Cifar10 => 32,
        }
    }

    /// Reference training-set size from the paper (60,000 / 50,000).
    pub fn paper_train_samples(&self) -> usize {
        match self {
            DatasetKind::Mnist => 60_000,
            DatasetKind::Cifar10 => 50_000,
        }
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Mnist => "MNIST",
            DatasetKind::Cifar10 => "CIFAR-10",
        }
    }
}

/// A labelled image dataset held in memory: images `[N, C, H, W]` in
/// `[0, 1]` plus integer class labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which reference dataset this stands in for.
    pub kind: DatasetKind,
    /// Image tensor `[N, C, H, W]` with values in `[0, 1]`.
    pub images: Tensor,
    /// Class label per image.
    pub labels: Vec<usize>,
    /// Number of classes (10 for both reference datasets).
    pub num_classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.images.shape()[2]
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.images.shape()[1]
    }

    /// Splits off the first `n` samples as one dataset and the rest as
    /// another (generators already randomize order, so a prefix split is
    /// unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n <= self.len(), "split point beyond dataset");
        let sample: usize = self.images.shape()[1..].iter().product();
        let head = Tensor::from_vec(
            &[n, self.channels(), self.size(), self.size()],
            self.images.data()[..n * sample].to_vec(),
        )
        .expect("head slice is consistent");
        let tail_n = self.len() - n;
        let tail = Tensor::from_vec(
            &[tail_n, self.channels(), self.size(), self.size()],
            self.images.data()[n * sample..].to_vec(),
        )
        .expect("tail slice is consistent");
        (
            Dataset {
                kind: self.kind,
                images: head,
                labels: self.labels[..n].to_vec(),
                num_classes: self.num_classes,
            },
            Dataset {
                kind: self.kind,
                images: tail,
                labels: self.labels[n..].to_vec(),
                num_classes: self.num_classes,
            },
        )
    }

    /// Gathers a batch of samples at the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let sample: usize = self.images.shape()[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "gather index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        let images =
            Tensor::from_vec(&[indices.len(), self.channels(), self.size(), self.size()], data)
                .expect("gathered batch is consistent");
        (images, labels)
    }

    /// Characterization statistics (entropy, sparsity, channel moments)
    /// used by the benchmark's dataset-analysis metric.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::measure(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let images = Tensor::arange(2 * 2 * 2).reshape(&[2, 1, 2, 2]).unwrap();
        Dataset { kind: DatasetKind::Mnist, images, labels: vec![3, 7], num_classes: 10 }
    }

    #[test]
    fn split_partitions_samples() {
        let d = toy();
        let (a, b) = d.split(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a.labels, vec![3]);
        assert_eq!(b.labels, vec![7]);
        assert_eq!(b.images.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn gather_reorders() {
        let d = toy();
        let (imgs, labels) = d.gather(&[1, 0]);
        assert_eq!(labels, vec![7, 3]);
        assert_eq!(imgs.shape(), &[2, 1, 2, 2]);
        assert_eq!(&imgs.data()[..4], &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(DatasetKind::Mnist.channels(), 1);
        assert_eq!(DatasetKind::Cifar10.channels(), 3);
        assert_eq!(DatasetKind::Mnist.native_size(), 28);
        assert_eq!(DatasetKind::Cifar10.native_size(), 32);
        assert_eq!(DatasetKind::Mnist.paper_train_samples(), 60_000);
        assert_eq!(DatasetKind::Cifar10.paper_train_samples(), 50_000);
    }
}
