//! Reusable `f32` buffer arena backing tensor storage and kernel
//! scratch space.
//!
//! Training and serving hot paths allocate the *same* buffer shapes
//! every iteration: layer activations, gradients, im2col patch tiles,
//! GEMM packing panels. Paying a heap allocation (and the kernel page
//! faults behind it) for each one dominates small-scale iteration time
//! and adds allocator jitter to every benchmark number. The arena turns
//! those into recycled buffers: dropping a [`Tensor`](crate::Tensor) or
//! an [`ArenaBuf`] returns its storage to a global pool keyed by exact
//! length, and the next request of that length reuses it.
//!
//! Recycling is *transparent to numerics*: a pooled buffer is either
//! fully overwritten or explicitly zeroed before use, so results are
//! bit-identical with the arena enabled, disabled (`DLBENCH_ARENA=0`),
//! hot or cold.
//!
//! The pool is shared across threads (parallel workers are short-lived
//! scoped threads, so a thread-local pool would leak every worker's
//! buffers); contention is a single uncontended mutex acquisition per
//! take/give, far below the cost of the kernels the buffers feed.
//!
//! [`stats`] exposes hit/miss counters so tests can prove steady-state
//! training iterations stop allocating: after one warm-up iteration
//! every buffer request is served from the pool and the miss counter
//! stays flat (see `tests/tests/arena.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Dead buffers retained per distinct length. Bounds pool growth when a
/// workload churns many buffers of one size (e.g. per-worker packing
/// panels); steady-state training needs well under this.
const MAX_PER_LEN: usize = 32;

/// Total bytes the pool may retain across all lengths. Beyond this,
/// returned buffers are freed instead of pooled.
const MAX_TOTAL_BYTES: usize = 512 << 20;

struct Pool {
    buckets: BTreeMap<usize, Vec<Vec<f32>>>,
    total_bytes: usize,
}

static POOL: Mutex<Pool> = Mutex::new(Pool { buckets: BTreeMap::new(), total_bytes: 0 });
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);

/// Whether pooling is enabled (`DLBENCH_ARENA=0` disables it; every
/// take then allocates fresh and every give frees — useful to bisect
/// arena interactions and to prove numeric transparency).
fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("DLBENCH_ARENA").map_or(true, |v| v.trim() != "0"))
}

/// Takes a buffer of exactly `len` elements with *unspecified contents*
/// (fresh allocations are zeroed, recycled ones carry stale values).
/// Crate-internal: callers must fully overwrite before reading.
pub(crate) fn take_vec(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    if enabled() {
        let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(bucket) = pool.buckets.get_mut(&len) {
            if let Some(v) = bucket.pop() {
                pool.total_bytes -= len * 4;
                drop(pool);
                HITS.fetch_add(1, Ordering::Relaxed);
                debug_assert_eq!(v.len(), len);
                return v;
            }
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    vec![0.0; len]
}

/// Takes a zero-filled buffer of exactly `len` elements.
pub(crate) fn take_vec_zeroed(len: usize) -> Vec<f32> {
    let mut v = take_vec(len);
    v.fill(0.0);
    v
}

/// Returns a buffer to the pool (or frees it when pooling is disabled,
/// the buffer carries spare capacity, or the pool caps are reached).
pub(crate) fn give_vec(v: Vec<f32>) {
    let len = v.len();
    if len == 0 || v.capacity() != len || !enabled() {
        return;
    }
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if pool.total_bytes + len * 4 > MAX_TOTAL_BYTES {
        return;
    }
    let bucket = pool.buckets.entry(len).or_default();
    if bucket.len() < MAX_PER_LEN {
        bucket.push(v);
        pool.total_bytes += len * 4;
        drop(pool);
        RECYCLED.fetch_add(1, Ordering::Relaxed);
    }
}

/// A pooled scratch buffer; returns its storage to the arena on drop.
///
/// Used by kernel internals (GEMM packing panels, fused-conv patch
/// tiles) and by layer code staging per-sample scratch. Dereferences to
/// `[f32]`.
pub struct ArenaBuf {
    data: Vec<f32>,
}

impl ArenaBuf {
    /// Consumes the buffer, keeping its storage out of the pool.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }
}

impl std::ops::Deref for ArenaBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for ArenaBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for ArenaBuf {
    fn drop(&mut self) {
        give_vec(std::mem::take(&mut self.data));
    }
}

/// Takes a buffer of `len` elements with **unspecified contents**; the
/// caller must overwrite every element it later reads.
pub fn take(len: usize) -> ArenaBuf {
    ArenaBuf { data: take_vec(len) }
}

/// Takes a zero-filled buffer of `len` elements.
pub fn take_zeroed(len: usize) -> ArenaBuf {
    ArenaBuf { data: take_vec_zeroed(len) }
}

/// Arena traffic counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served by recycling a pooled buffer.
    pub hits: u64,
    /// Requests that fell through to a fresh heap allocation.
    pub misses: u64,
    /// Buffers accepted back into the pool.
    pub recycled: u64,
}

/// Snapshot of the global arena counters.
pub fn stats() -> ArenaStats {
    ArenaStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
    }
}

/// Frees every pooled buffer (counters are left running).
pub fn clear() {
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    pool.buckets.clear();
    pool.total_bytes = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_recycles_exact_length() {
        let before = stats();
        let a = take(4096);
        assert_eq!(a.len(), 4096);
        drop(a);
        let b = take(4096);
        let after = stats();
        assert_eq!(b.len(), 4096);
        // The second take of this length must be a hit (the pool is
        // global, so other tests can only add hits, never remove the
        // buffer we just returned within this sequential scope).
        assert!(after.hits > before.hits || after.misses >= before.misses + 2);
    }

    #[test]
    fn zeroed_take_is_actually_zeroed() {
        {
            let mut a = take(513);
            a.fill(7.0);
        }
        let b = take_zeroed(513);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_length_is_free() {
        let before = stats();
        let a = take(0);
        assert!(a.is_empty());
        drop(a);
        let after = stats();
        assert_eq!(before.misses, after.misses);
    }

    #[test]
    fn into_vec_escapes_the_pool() {
        let a = take(257);
        let v = a.into_vec();
        assert_eq!(v.len(), 257);
        // Dropping the escaped vec must not panic or double-return.
        drop(v);
    }
}
