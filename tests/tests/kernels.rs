//! Kernel equivalence gate: the packed, blocked GEMM kernels and the
//! fused im2col+GEMM convolution must be *bitwise* equal to their
//! textbook references.
//!
//! The determinism contract (see `dlbench_tensor::linalg`) says every
//! destination element evolves as the fixed chain
//! `c = (((c₀ + t₀) + t₁) + …)` with `t_kk = a_ik · b_kj` in ascending
//! `kk`. Blocking, packing, path choice (small vs packed) and thread
//! count may only change *which element is computed when*, never the
//! per-element operation sequence — so the optimized kernels must
//! reproduce the naive triple loop bit for bit, on every shape
//! including ragged tails, empty dims and 1×1, at any thread count.

use dlbench_data::DatasetKind;
use dlbench_frameworks::{arch_defaults, FrameworkKind};
use dlbench_nn::{Conv2d, Initializer, Layer};
use dlbench_tensor::{gemm, gemm_a_bt, gemm_at_b, gemm_bias, par, SeededRng, Tensor};
use std::sync::Mutex;

/// Serializes tests that mutate the global worker count.
static THREADS_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    THREADS_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` at the given thread count, restoring single-threaded
/// execution afterwards so unrelated tests see a fixed configuration.
fn at_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    par::set_threads(n);
    let out = f();
    par::set_threads(1);
    out
}

/// The reference semantics, spelled out: a naive triple loop that
/// accumulates `a[i,kk] * b[kk,j]` directly into `c[i,j]` in ascending
/// `kk`. No skips, no reassociation, no FMA.
fn naive_gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            for kk in 0..k {
                c[i * n + j] += a[i * k + kk] * b[kk * n + j];
            }
        }
    }
}

/// `c += aᵀ @ b` with `a` stored `[k, m]`.
fn naive_gemm_at_b(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            for kk in 0..k {
                c[i * n + j] += a[kk * m + i] * b[kk * n + j];
            }
        }
    }
}

/// `c += a @ bᵀ` with `b` stored `[n, k]`.
fn naive_gemm_a_bt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        for j in 0..n {
            for kk in 0..k {
                c[i * n + j] += a[i * k + kk] * b[j * k + kk];
            }
        }
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Shapes that exercise every dispatch path: the small loop (below
/// `PACK_MIN_WORK`), the packed path, ragged tails against the 4×8
/// micro-tile and the 256-deep k-block, empty dims, 1×1, and sizes big
/// enough to clear `par::PAR_MIN_WORK` so 4 threads genuinely fan out.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (4, 8, 8),
    (3, 5, 7),
    (0, 4, 4),
    (4, 0, 4),
    (4, 4, 0),
    (37, 41, 29),
    (64, 300, 48),
    (128, 96, 80),
    (65, 257, 9),
];

#[test]
fn packed_gemm_kernels_match_naive_reference_bitwise() {
    let _gate = gate();
    let mut rng = SeededRng::new(0x4E44);
    for &(m, k, n) in SHAPES {
        let a = Tensor::randn(&[m.max(1), k.max(1)], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[k.max(1), n.max(1)], 0.0, 1.0, &mut rng);
        let bias = Tensor::randn(&[n.max(1)], 0.0, 1.0, &mut rng);
        // Nonzero destination: accumulation order into existing values
        // is part of the contract, not just the product itself.
        let c_init = Tensor::randn(&[m.max(1), n.max(1)], 0.0, 1.0, &mut rng);
        let c_init = &c_init.data()[..m * n];
        let (ad, bd) = (&a.data()[..m * k], &b.data()[..k * n]);

        let mut want = c_init.to_vec();
        naive_gemm(m, k, n, ad, bd, &mut want);
        for threads in [1, 4] {
            let mut got = c_init.to_vec();
            at_threads(threads, || gemm(m, k, n, ad, bd, &mut got));
            assert_eq!(bits(&got), bits(&want), "gemm {m}x{k}x{n} @ {threads} threads");
        }

        let mut want_bias = vec![0.0f32; m * n];
        for row in want_bias.chunks_exact_mut(n.max(1)) {
            row.copy_from_slice(&bias.data()[..n]);
        }
        naive_gemm(m, k, n, ad, bd, &mut want_bias);
        for threads in [1, 4] {
            let mut got = vec![0.0f32; m * n];
            at_threads(threads, || gemm_bias(m, k, n, ad, bd, &bias.data()[..n], &mut got));
            assert_eq!(bits(&got), bits(&want_bias), "gemm_bias {m}x{k}x{n} @ {threads} threads");
        }

        // Transposed-operand variants, same shapes: `a` as [k, m] for
        // aᵀb, `b` as [n, k] for abᵀ.
        let at_full = Tensor::randn(&[k.max(1), m.max(1)], 0.0, 1.0, &mut rng).into_vec();
        let at = &at_full[..k * m];
        let mut want = c_init.to_vec();
        naive_gemm_at_b(m, k, n, at, bd, &mut want);
        for threads in [1, 4] {
            let mut got = c_init.to_vec();
            at_threads(threads, || gemm_at_b(m, k, n, at, bd, &mut got));
            assert_eq!(bits(&got), bits(&want), "gemm_at_b {m}x{k}x{n} @ {threads} threads");
        }

        let bt_full = Tensor::randn(&[n.max(1), k.max(1)], 0.0, 1.0, &mut rng).into_vec();
        let bt = &bt_full[..n * k];
        let mut want = c_init.to_vec();
        naive_gemm_a_bt(m, k, n, ad, bt, &mut want);
        for threads in [1, 4] {
            let mut got = c_init.to_vec();
            at_threads(threads, || gemm_a_bt(m, k, n, ad, bt, &mut got));
            assert_eq!(bits(&got), bits(&want), "gemm_a_bt {m}x{k}x{n} @ {threads} threads");
        }
    }
}

/// Regression for the old `aik == 0.0` fast-skip in the serial GEMM: a
/// zero left operand must still multiply the right operand, because
/// `0 · NaN = NaN` and `0 · ∞ = NaN` — TrainGuard's divergence
/// detection relies on non-finite values propagating through every
/// kernel instead of being silently filtered.
#[test]
fn zero_rows_do_not_mask_poisoned_operands() {
    let _gate = gate();
    // Big enough for the packed path, with k past one k-block, and a
    // small-path shape too — the skip must exist on neither.
    for (m, k, n) in [(2usize, 3usize, 4usize), (48, 300, 40)] {
        let a = vec![0.0f32; m * k];
        let mut rng = SeededRng::new(0xBAD);
        let mut b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng).into_vec();
        // Poison one full b row: every output column sees a NaN term.
        for v in &mut b[n..2 * n] {
            *v = f32::NAN;
        }
        for threads in [1, 4] {
            let mut c = vec![0.0f32; m * n];
            at_threads(threads, || gemm(m, k, n, &a, &b, &mut c));
            assert!(
                c.iter().all(|v| v.is_nan()),
                "0·NaN was dropped ({m}x{k}x{n} @ {threads} threads)"
            );
        }
    }
}

/// The fused im2col+GEMM forward must be bitwise-transparent: for every
/// conv geometry in the three personality networks (both datasets), the
/// fused `Conv2d::forward` equals the materialized im2col+GEMM oracle,
/// serial and at 4 threads.
#[test]
fn fused_conv_forward_is_bitwise_transparent_for_all_personalities() {
    let _gate = gate();
    let mut rng = SeededRng::new(0xF5ED);
    const BATCH: usize = 3;
    for fw in FrameworkKind::ALL {
        for ds in [DatasetKind::Mnist, DatasetKind::Cifar10] {
            let spec = arch_defaults(fw, ds);
            let input = (ds.channels(), ds.native_size(), ds.native_size());
            for (i, (geo, oc)) in spec.conv_geometries(input).iter().enumerate() {
                let mut conv = Conv2d::new(
                    geo.in_channels,
                    *oc,
                    geo.kernel_h,
                    geo.stride,
                    geo.pad,
                    Initializer::Xavier,
                    &mut rng,
                );
                let x = Tensor::randn(
                    &[BATCH, geo.in_channels, geo.in_h, geo.in_w],
                    0.0,
                    1.0,
                    &mut rng,
                );
                let want = bits(conv.forward_materialized(&x).data());
                for threads in [1, 4] {
                    let got = at_threads(threads, || conv.forward(&x, false));
                    assert_eq!(
                        bits(got.data()),
                        want,
                        "{}/conv{} fused != materialized @ {threads} threads",
                        spec.name,
                        i + 1
                    );
                }
            }
        }
    }
}
