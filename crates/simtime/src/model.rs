//! The cost model combining a device and an execution profile.

use crate::device::Device;
use crate::profile::ExecutionProfile;
use dlbench_nn::LayerCost;

/// Converts [`LayerCost`] work descriptions into simulated seconds for a
/// (device, framework-profile) pair.
#[derive(Debug, Clone)]
pub struct CostModel {
    device: Device,
    profile: ExecutionProfile,
}

impl CostModel {
    /// Creates a cost model.
    pub fn new(device: Device, profile: ExecutionProfile) -> Self {
        Self { device, profile }
    }

    /// The device being modelled.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The framework execution profile.
    pub fn profile(&self) -> &ExecutionProfile {
        &self.profile
    }

    fn compute_seconds(&self, flops: u64, batch: usize) -> f64 {
        let eff = self.profile.efficiency(self.device.kind, batch).max(1e-9);
        flops as f64 / (self.device.throughput_gflops * eff * 1e9)
    }

    fn traffic_seconds(&self, scalars: u64) -> f64 {
        // f32 traffic: reads+writes ≈ 2 passes over the data.
        (scalars as f64 * 4.0 * 2.0) / (self.device.bandwidth_gbs * 1e9)
    }

    fn launch_seconds(&self, kernels: u32) -> f64 {
        kernels as f64 * (self.device.launch_us + self.profile.dispatch_us) * 1e-6
    }

    /// Simulated seconds for one training iteration (forward, backward,
    /// update) over a `batch`-sample batch whose aggregate cost is
    /// `cost`.
    pub fn train_iteration_seconds_batched(&self, cost: &LayerCost, batch: usize) -> f64 {
        self.profile.iter_overhead_ms * 1e-3
            + self.launch_seconds(cost.train_kernels())
            + self.compute_seconds(cost.train_flops(), batch)
            // Parameter update traffic: read grad + write weight, plus
            // activation traffic for the batch.
            + self.traffic_seconds(cost.activations + 2 * cost.params)
    }

    /// Simulated seconds for one inference (forward-only) pass over a
    /// `batch`-sample batch whose aggregate cost is `cost`.
    pub fn inference_seconds_batched(&self, cost: &LayerCost, batch: usize) -> f64 {
        self.profile.infer_overhead_ms * 1e-3
            + self.launch_seconds(cost.fwd_kernels)
            + self.compute_seconds(cost.fwd_flops, batch)
            + self.traffic_seconds(cost.activations)
    }

    /// Simulated seconds for one *int8-quantized* inference pass.
    ///
    /// `quantized` aggregates the layers running on the int8 path and
    /// `fallback` the layers still executing in fp32 (activations,
    /// pools, normalization — see `dlbench-quant`). Quantized compute
    /// runs at the device's [`Device::int8_speedup`] multiple of f32
    /// throughput and its activation traffic moves 1-byte scalars
    /// instead of 4-byte ones; everything else — per-kernel launches,
    /// framework dispatch overhead, the fp32 remainder — is charged
    /// exactly as in [`CostModel::inference_seconds_batched`]. The
    /// fp32/int8 testing-time ratio therefore varies by architecture
    /// with the fraction of compute that actually quantizes, which is
    /// the effect the quantization benchmark reports.
    pub fn inference_seconds_batched_int8(
        &self,
        quantized: &LayerCost,
        fallback: &LayerCost,
        batch: usize,
    ) -> f64 {
        self.profile.infer_overhead_ms * 1e-3
            + self.launch_seconds(quantized.fwd_kernels + fallback.fwd_kernels)
            + self.compute_seconds(quantized.fwd_flops, batch) / self.device.int8_speedup
            + self.compute_seconds(fallback.fwd_flops, batch)
            + self.traffic_seconds(quantized.activations) / 4.0
            + self.traffic_seconds(fallback.activations)
    }

    /// [`CostModel::train_iteration_seconds_batched`] at a batch size
    /// large enough that batch-ramp effects vanish.
    pub fn train_iteration_seconds(&self, cost: &LayerCost) -> f64 {
        self.train_iteration_seconds_batched(cost, 1_000)
    }

    /// [`CostModel::inference_seconds_batched`] at a batch size large
    /// enough that batch-ramp effects vanish.
    pub fn inference_seconds(&self, cost: &LayerCost) -> f64 {
        self.inference_seconds_batched(cost, 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gtx_1080_ti, xeon_e5_1620};
    use crate::profile::{caffe, tensorflow, torch};

    /// A batch cost roughly matching TensorFlow's MNIST default: batch
    /// 50, ≈83 MFLOP/sample training work, ~30 kernels.
    fn tf_mnist_batch() -> LayerCost {
        LayerCost {
            fwd_flops: 1_400_000_000,
            bwd_flops: 2_800_000_000,
            params: 3_300_000,
            activations: 3_000_000,
            fwd_kernels: 12,
            bwd_kernels: 18,
        }
    }

    #[test]
    fn gpu_faster_than_cpu_for_compute_bound_work() {
        let cost = tf_mnist_batch();
        let cpu = CostModel::new(xeon_e5_1620(), tensorflow());
        let gpu = CostModel::new(gtx_1080_ti(), tensorflow());
        let speedup = cpu.train_iteration_seconds(&cost) / gpu.train_iteration_seconds(&cost);
        // The paper reports 5-30x GPU speedups across frameworks.
        assert!(speedup > 3.0 && speedup < 100.0, "speedup {speedup}");
    }

    #[test]
    fn tf_mnist_iteration_close_to_paper() {
        // Paper: TF-GPU MNIST = 68.51 s / 20,000 iterations ≈ 3.4 ms.
        let gpu = CostModel::new(gtx_1080_ti(), tensorflow());
        let t = gpu.train_iteration_seconds(&tf_mnist_batch());
        assert!(t > 1e-3 && t < 10e-3, "iteration {t}s");
    }

    #[test]
    fn caffe_small_batches_are_overhead_bound() {
        // Tiny compute, but Caffe's data layer costs ~8 ms/iteration.
        let tiny = LayerCost {
            fwd_flops: 10_000_000,
            bwd_flops: 20_000_000,
            params: 400_000,
            activations: 100_000,
            fwd_kernels: 10,
            bwd_kernels: 14,
        };
        let gpu = CostModel::new(gtx_1080_ti(), caffe());
        let t = gpu.train_iteration_seconds(&tiny);
        assert!(t > 8e-3 && t < 12e-3, "iteration {t}s");
    }

    #[test]
    fn torch_cpu_per_flop_is_an_order_slower() {
        let cost = tf_mnist_batch();
        let tf_cpu = CostModel::new(xeon_e5_1620(), tensorflow());
        let torch_cpu = CostModel::new(xeon_e5_1620(), torch());
        let ratio =
            torch_cpu.train_iteration_seconds(&cost) / tf_cpu.train_iteration_seconds(&cost);
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn inference_cheaper_than_training_for_batched_frameworks() {
        let cost = tf_mnist_batch();
        for profile in [tensorflow(), caffe()] {
            let m = CostModel::new(gtx_1080_ti(), profile);
            assert!(m.inference_seconds(&cost) < m.train_iteration_seconds(&cost));
        }
        // Torch is the paper's counterexample: its per-batch evaluation
        // overhead (17.6 ms/batch in Table VIa) exceeds its tiny
        // batch-10 training iterations (4.7 ms) — the profile preserves
        // that inversion for small training batches.
        let torch_m = CostModel::new(gtx_1080_ti(), torch());
        let small_train = LayerCost {
            fwd_flops: 25_000_000, // batch-10 MNIST iteration
            bwd_flops: 50_000_000,
            params: 700_000,
            activations: 60_000,
            fwd_kernels: 12,
            bwd_kernels: 18,
        };
        assert!(
            torch_m.inference_seconds(&tf_mnist_batch())
                > torch_m.train_iteration_seconds_batched(&small_train, 10)
        );
    }

    #[test]
    fn zero_cost_is_pure_overhead() {
        let m = CostModel::new(gtx_1080_ti(), tensorflow());
        let t = m.train_iteration_seconds(&LayerCost::default());
        assert!((t - 0.6e-3).abs() < 1e-6);
    }
}
