//! Per-framework input preprocessing pipelines.
//!
//! Each reference framework ships a different default input pipeline,
//! and — as the paper's Caffe-MNIST-settings-on-CIFAR divergence shows —
//! the pipeline travels with the *configuration*, so it is part of the
//! default-setting database rather than the dataset.

use crate::dataset::Dataset;
use dlbench_tensor::Tensor;

/// An input preprocessing scheme applied to `[N, C, H, W]` batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preprocessing {
    /// Keep raw `[0, 1]` intensities (Caffe's LeNet `scale: 0.00390625`
    /// pipeline: bytes scaled to `[0, 1]`, no centering).
    Raw01,
    /// Subtract the per-channel training-set mean (Caffe's CIFAR-10
    /// `mean.binaryproto` pipeline).
    MeanSubtract,
    /// Per-image standardization to zero mean / unit variance
    /// (TensorFlow's `tf.image.per_image_standardization`; Torch's
    /// global normalization behaves equivalently for our generator).
    Standardize,
    /// Raw byte-range values (`[0, 255]`): what a Caffe net sees when a
    /// transplanted prototxt loses its dataset-specific `scale`
    /// transform. Feeding byte-range inputs into a LeNet-class model
    /// explodes the softmax immediately — the mechanism behind the
    /// paper's Figure 5 flat-loss divergence (Caffe reports exactly
    /// `-ln(FLT_MIN) ≈ 87.34` forever).
    RawBytes,
    /// Token-id passthrough for text sequences: ids are categorical, so
    /// every numeric transform above would destroy them. Explicit (not
    /// `Raw01`) so a configuration table shows the text pipeline by
    /// name, and so numeric schemes transplanted onto token data are
    /// distinguishable from the intended no-op.
    TokenIds,
}

impl Preprocessing {
    /// Short name for configuration tables.
    pub fn name(&self) -> &'static str {
        match self {
            Preprocessing::Raw01 => "scale 1/256",
            Preprocessing::MeanSubtract => "mean subtract",
            Preprocessing::Standardize => "standardize",
            Preprocessing::RawBytes => "raw bytes (no scale)",
            Preprocessing::TokenIds => "token ids (passthrough)",
        }
    }

    /// Per-channel means of a dataset (the "training mean" a Caffe-style
    /// pipeline would bake in).
    pub fn channel_means(dataset: &Dataset) -> Vec<f32> {
        let c = dataset.channels();
        let plane = dataset.images.shape()[2] * dataset.images.shape()[3];
        let n = dataset.len();
        let mut means = vec![0.0f32; c];
        for s in 0..n {
            for (ch, m) in means.iter_mut().enumerate() {
                let off = (s * c + ch) * plane;
                *m += dataset.images.data()[off..off + plane].iter().sum::<f32>();
            }
        }
        means.iter().map(|m| m / (n * plane) as f32).collect()
    }

    /// Applies the preprocessing to a batch. `channel_means` must be the
    /// training-set means when the scheme is [`Preprocessing::MeanSubtract`]
    /// (ignored otherwise).
    pub fn apply(&self, batch: &Tensor, channel_means: &[f32]) -> Tensor {
        match self {
            Preprocessing::Raw01 | Preprocessing::TokenIds => batch.clone(),
            Preprocessing::RawBytes => batch.scale(255.0),
            Preprocessing::MeanSubtract => {
                let (n, c) = (batch.shape()[0], batch.shape()[1]);
                let plane: usize = batch.shape()[2] * batch.shape()[3];
                assert_eq!(channel_means.len(), c, "mean/channel mismatch");
                let mut out = batch.clone();
                for s in 0..n {
                    for (ch, &m) in channel_means.iter().enumerate() {
                        let off = (s * c + ch) * plane;
                        for v in &mut out.data_mut()[off..off + plane] {
                            *v -= m;
                        }
                    }
                }
                out
            }
            Preprocessing::Standardize => {
                let n = batch.shape()[0];
                let sample: usize = batch.shape()[1..].iter().product();
                let mut out = batch.clone();
                for s in 0..n {
                    let slice = &mut out.data_mut()[s * sample..(s + 1) * sample];
                    let mean = slice.iter().sum::<f32>() / sample as f32;
                    let var =
                        slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / sample as f32;
                    // TensorFlow floors the deviation to avoid amplifying
                    // constant images.
                    let std = var.sqrt().max(1.0 / (sample as f32).sqrt());
                    for v in slice.iter_mut() {
                        *v = (*v - mean) / std;
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SynthCifar10, SynthMnist};

    #[test]
    fn raw01_is_identity() {
        let d = SynthMnist::generate(4, 12, 1);
        let out = Preprocessing::Raw01.apply(&d.images, &[]);
        assert_eq!(out, d.images);
    }

    #[test]
    fn mean_subtract_centers_channels() {
        let d = SynthCifar10::generate(20, 12, 2);
        let means = Preprocessing::channel_means(&d);
        assert_eq!(means.len(), 3);
        let out = Preprocessing::MeanSubtract.apply(&d.images, &means);
        // Each channel's global mean should now be ~0.
        let plane = 12 * 12;
        for ch in 0..3 {
            let mut acc = 0.0f32;
            for s in 0..20 {
                let off = (s * 3 + ch) * plane;
                acc += out.data()[off..off + plane].iter().sum::<f32>();
            }
            assert!((acc / (20.0 * plane as f32)).abs() < 1e-4);
        }
    }

    #[test]
    fn standardize_zero_mean_unit_variance() {
        let d = SynthCifar10::generate(5, 16, 3);
        let out = Preprocessing::Standardize.apply(&d.images, &[]);
        let sample = 3 * 16 * 16;
        for s in 0..5 {
            let slice = &out.data()[s * sample..(s + 1) * sample];
            let mean = slice.iter().sum::<f32>() / sample as f32;
            let var = slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / sample as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 0.05, "var {var}");
        }
    }

    #[test]
    fn raw_bytes_rescales_to_byte_range() {
        let d = SynthMnist::generate(2, 12, 9);
        let out = Preprocessing::RawBytes.apply(&d.images, &[]);
        assert!(out.max() > 100.0, "byte-range values expected");
        assert!((out.data()[0] - d.images.data()[0] * 255.0).abs() < 1e-4);
    }

    #[test]
    fn standardize_constant_image_is_finite() {
        let img = Tensor::full(&[1, 1, 4, 4], 0.7);
        let out = Preprocessing::Standardize.apply(&img, &[]);
        assert!(!out.has_non_finite());
        assert!(out.data().iter().all(|&v| v.abs() < 1e-4));
    }
}
