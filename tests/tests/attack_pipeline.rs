//! Integration of the adversarial metric group with trained models.

use dlbench_adversarial::{fgsm_success_rates, jsma, FgsmConfig, JsmaConfig};
use dlbench_data::DatasetKind;
use dlbench_frameworks::{trainer, DefaultSetting, FrameworkKind, Scale};
use dlbench_integration_tests::TEST_SEED;

#[test]
fn fgsm_succeeds_more_with_larger_epsilon() {
    let mut out = trainer::run_training(
        FrameworkKind::Caffe,
        DefaultSetting::new(FrameworkKind::Caffe, DatasetKind::Mnist),
        DatasetKind::Mnist,
        Scale::Tiny,
        TEST_SEED,
    );
    let (_, test) = trainer::generate_data(DatasetKind::Mnist, Scale::Tiny, TEST_SEED);
    let mut rates = Vec::new();
    for eps in [0.02f32, 0.3] {
        let config = FgsmConfig { epsilon: eps, clamp: Some((0.0, 1.0)) };
        let r = fgsm_success_rates(&mut out.model, &test.images, &test.labels, 10, &config);
        rates.push(r.mean_success_rate());
    }
    assert!(rates[1] > rates[0], "bigger perturbations should flip more: {rates:?}");
    assert!(rates[1] > 0.3, "eps=0.3 should flip a good fraction: {rates:?}");
}

#[test]
fn jsma_crafts_targeted_examples_against_trained_model() {
    let mut out = trainer::run_training(
        FrameworkKind::Caffe,
        DefaultSetting::new(FrameworkKind::Caffe, DatasetKind::Mnist),
        DatasetKind::Mnist,
        Scale::Tiny,
        TEST_SEED,
    );
    let (_, test) = trainer::generate_data(DatasetKind::Mnist, Scale::Tiny, TEST_SEED);
    // Find a correctly-classified digit-1 sample.
    let mut found = None;
    for i in 0..test.len() {
        if test.labels[i] == 1 {
            let x = test.images.slice_batch(i);
            if out.model.forward(&x, false).argmax_rows()[0] == 1 {
                found = Some(x);
                break;
            }
        }
    }
    let x = found.expect("a correctly-classified digit 1 exists");
    let config = JsmaConfig { theta: 0.4, max_distortion: 0.4, clamp: (0.0, 1.0) };
    // Try all targets; at least one must be craftable with a generous
    // budget (the paper's Figure 9 shows digit 1 crafts into several
    // classes with high success).
    let mut successes = 0;
    for target in [7usize, 8, 2, 3] {
        let outcome = jsma(&mut out.model, &x, target, &config);
        if outcome.success {
            successes += 1;
            assert!(outcome.iterations > 0, "crafting must take work");
        }
    }
    assert!(successes >= 1, "no target craftable from digit 1");
}

#[test]
fn attacks_do_not_corrupt_the_model() {
    // Attacking must leave the model's weights untouched (backward
    // accumulates into gradients only).
    let mut out = trainer::run_training(
        FrameworkKind::TensorFlow,
        DefaultSetting::new(FrameworkKind::TensorFlow, DatasetKind::Mnist),
        DatasetKind::Mnist,
        Scale::Tiny,
        TEST_SEED,
    );
    let (_, test) = trainer::generate_data(DatasetKind::Mnist, Scale::Tiny, TEST_SEED);
    let before = out.model.snapshot();
    let acc_before =
        trainer::evaluate(&mut out.model, &test, out.preprocessing, &out.channel_means);
    let config = FgsmConfig { epsilon: 0.2, clamp: Some((0.0, 1.0)) };
    fgsm_success_rates(&mut out.model, &test.images, &test.labels, 10, &config);
    let after = out.model.snapshot();
    assert_eq!(before, after, "attack mutated model parameters");
    let acc_after = trainer::evaluate(&mut out.model, &test, out.preprocessing, &out.channel_means);
    assert_eq!(acc_before, acc_after);
}
