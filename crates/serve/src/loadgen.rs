//! Load generation against a running server: a hand-rolled HTTP/1.1
//! client, closed-loop (fixed concurrency, next request on reply) and
//! open-loop (fixed arrival rate, independent of replies) drivers, and
//! the batch-deadline sweep behind `BENCH_serve.json`.

use crate::batcher::BatchConfig;
use crate::model::{ModelRegistry, ModelSpec};
use crate::ServeError;
use dlbench_core::Histogram;
use dlbench_data::DatasetKind;
use dlbench_frameworks::{trainer, FrameworkKind, Scale};
use dlbench_json::JsonValue;
use dlbench_trace::Stopwatch;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How requests are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Fixed concurrency: each of `concurrency` virtual clients fires
    /// its next request the moment the previous reply lands.
    Closed {
        /// Number of concurrent virtual clients.
        concurrency: usize,
    },
    /// Fixed arrival rate (requests per second), independent of reply
    /// latency — the mode that actually exposes queueing collapse.
    Open {
        /// Target arrival rate in requests per second.
        rate_rps: f64,
    },
}

/// One load-generation run's shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Pacing mode.
    pub mode: LoadMode,
    /// Total requests to send.
    pub requests: usize,
}

/// Client-side view of one finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: usize,
    /// `200` replies.
    pub ok: usize,
    /// `503` replies (load shed by the server).
    pub shed: usize,
    /// Transport failures and non-200/503 statuses.
    pub errors: usize,
    /// Wall-clock duration of the run, seconds.
    pub wall_s: f64,
    /// Completed requests per second of wall-clock.
    pub achieved_rps: f64,
    /// Client-observed latency of `200` replies, milliseconds.
    pub latency_ms: Histogram,
}

impl LoadReport {
    /// Fraction of sent requests the server shed with `503`.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.shed as f64 / self.sent as f64
        }
    }

    /// JSON row for reports and the bench harness.
    pub fn to_json(&self) -> JsonValue {
        let latency = match self.latency_ms.summary() {
            Some(s) => dlbench_json::ToJson::to_json(&s),
            None => JsonValue::Null,
        };
        JsonValue::Object(vec![
            ("sent".into(), self.sent.into()),
            ("ok".into(), self.ok.into()),
            ("shed".into(), self.shed.into()),
            ("shed_rate".into(), self.shed_rate().into()),
            ("errors".into(), self.errors.into()),
            ("wall_s".into(), self.wall_s.into()),
            ("achieved_rps".into(), self.achieved_rps.into()),
            ("latency_ms".into(), latency),
        ])
    }
}

/// One raw HTTP exchange: sends `method path` with an optional JSON
/// body over a fresh connection and returns `(status, body)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), ServeError> {
    let io = |e: std::io::Error| ServeError::Io(e.to_string());
    let mut stream = TcpStream::connect(addr).map_err(io)?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(io)?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream.write_all(head.as_bytes()).map_err(io)?;
    stream.write_all(payload.as_bytes()).map_err(io)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(io)?;
    let status_line = response.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ServeError::Io(format!("bad status line {status_line:?}")))?;
    let body = match response.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

/// Sends one predict request; returns `(status, parsed body)`.
pub fn predict(
    addr: SocketAddr,
    model: &str,
    input: &[f32],
) -> Result<(u16, JsonValue), ServeError> {
    let body = encode_input(input);
    let (status, text) = http_request(addr, "POST", &format!("/predict/{model}"), Some(&body))?;
    let value = dlbench_json::parse(&text)
        .map_err(|e| ServeError::Io(format!("unparsable response body: {e}")))?;
    Ok((status, value))
}

/// Encodes an input sample as the JSON array the predict endpoint
/// expects.
pub fn encode_input(input: &[f32]) -> String {
    let values: Vec<JsonValue> = input.iter().map(|&v| JsonValue::from(v)).collect();
    JsonValue::Array(values).pretty()
}

struct Tally {
    ok: usize,
    shed: usize,
    errors: usize,
    latency_ms: Histogram,
}

impl Tally {
    fn new() -> Self {
        Self { ok: 0, shed: 0, errors: 0, latency_ms: Histogram::new() }
    }

    fn observe(&mut self, outcome: Result<(u16, JsonValue), ServeError>, elapsed: Duration) {
        match outcome {
            Ok((200, _)) => {
                self.ok += 1;
                self.latency_ms.record(elapsed.as_secs_f64() * 1e3);
            }
            Ok((503, _)) => self.shed += 1,
            _ => self.errors += 1,
        }
    }

    fn merge(&mut self, other: Tally) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.errors += other.errors;
        self.latency_ms.merge(&other.latency_ms);
    }
}

/// Drives `config.requests` predict calls against `addr`, cycling
/// through `inputs` round-robin.
pub fn run(addr: SocketAddr, model: &str, inputs: &[Vec<f32>], config: &LoadConfig) -> LoadReport {
    assert!(!inputs.is_empty(), "loadgen needs at least one input sample");
    let started = Stopwatch::start();
    let results: Mutex<Tally> = Mutex::new(Tally::new());
    match config.mode {
        LoadMode::Closed { concurrency } => {
            let next = AtomicUsize::new(0);
            let workers = concurrency.max(1);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local = Tally::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::SeqCst);
                            if i >= config.requests {
                                break;
                            }
                            let input = &inputs[i % inputs.len()];
                            let t0 = Stopwatch::start();
                            let outcome = predict(addr, model, input);
                            local.observe(outcome, t0.elapsed());
                        }
                        merge_tallies(&results, local);
                    });
                }
            });
        }
        LoadMode::Open { rate_rps } => {
            let interval = Duration::from_secs_f64(1.0 / rate_rps.max(1e-6));
            std::thread::scope(|scope| {
                for i in 0..config.requests {
                    let due_ns = interval.as_nanos() as u64 * i as u64;
                    let wait_ns = due_ns.saturating_sub(started.elapsed_ns());
                    if wait_ns > 0 {
                        std::thread::sleep(Duration::from_nanos(wait_ns));
                    }
                    let input = &inputs[i % inputs.len()];
                    let results = &results;
                    scope.spawn(move || {
                        let mut local = Tally::new();
                        let t0 = Stopwatch::start();
                        let outcome = predict(addr, model, input);
                        local.observe(outcome, t0.elapsed());
                        merge_tallies(results, local);
                    });
                }
            });
        }
    }
    let wall_s = started.elapsed_s().max(1e-9);
    let tally = results.into_inner().unwrap_or_else(|e| e.into_inner());
    LoadReport {
        sent: config.requests,
        ok: tally.ok,
        shed: tally.shed,
        errors: tally.errors,
        wall_s,
        achieved_rps: tally.ok as f64 / wall_s,
        latency_ms: tally.latency_ms,
    }
}

fn merge_tallies(results: &Mutex<Tally>, local: Tally) {
    let mut guard = results.lock().unwrap_or_else(|e| e.into_inner());
    guard.merge(local);
}

/// Test-set input samples for a dataset at a scale, flattened to the
/// predict wire format.
pub fn sample_inputs(dataset: DatasetKind, scale: Scale, seed: u64, count: usize) -> Vec<Vec<f32>> {
    let (_, test) = trainer::generate_data(dataset, scale, seed);
    let n = test.len().min(count.max(1));
    let idx: Vec<usize> = (0..n).collect();
    let (images, _) = test.gather(&idx);
    let sample_len = images.data().len() / n;
    images.data().chunks(sample_len).map(<[f32]>::to_vec).collect()
}

/// Sweeps batch deadlines across the three framework personalities
/// under open-loop load, producing the rows behind `BENCH_serve.json`:
/// throughput and tail latency as a function of the micro-batcher's
/// max-wait deadline.
pub fn sweep_personalities(
    scale: Scale,
    seed: u64,
    deadlines_ms: &[u64],
    requests: usize,
    rate_rps: f64,
    max_batch: usize,
) -> JsonValue {
    let dataset = DatasetKind::Mnist;
    let inputs = sample_inputs(dataset, scale, seed, 16);
    let mut rows = Vec::new();
    for fw in FrameworkKind::ALL {
        for &deadline_ms in deadlines_ms {
            let spec = ModelSpec::own_default("sweep", fw, dataset, scale, seed);
            let served = spec.instantiate(None).expect("fresh model needs no checkpoint");
            let mut registry = ModelRegistry::new();
            let config = BatchConfig {
                max_batch,
                max_wait: Duration::from_millis(deadline_ms),
                ..BatchConfig::default()
            };
            registry.register(served, config).expect("fresh registry");
            let server = crate::http::serve(registry, "127.0.0.1:0").expect("ephemeral bind");
            let report = run(
                server.addr(),
                "sweep",
                &inputs,
                &LoadConfig { mode: LoadMode::Open { rate_rps }, requests },
            );
            server.shutdown();
            let mut row = vec![
                ("framework".to_string(), JsonValue::from(fw.name())),
                ("batch_deadline_ms".to_string(), JsonValue::from(deadline_ms as usize)),
                ("max_batch".to_string(), JsonValue::from(max_batch)),
                ("offered_rps".to_string(), JsonValue::from(rate_rps)),
            ];
            if let JsonValue::Object(fields) = report.to_json() {
                row.extend(fields);
            }
            rows.push(JsonValue::Object(row));
        }
    }
    JsonValue::Object(vec![
        ("scale".to_string(), format!("{scale:?}").into()),
        ("seed".to_string(), (seed as usize).into()),
        ("rows".to_string(), JsonValue::Array(rows)),
    ])
}
