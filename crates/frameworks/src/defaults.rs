//! The default-configuration database (paper Tables II–V).
//!
//! A *default setting* in the paper is everything a framework ships for
//! a dataset: training hyperparameters, learning-rate schedule, input
//! pipeline, regularizer, and network architecture. Settings are
//! first-class values here so the benchmark can transplant them across
//! frameworks and datasets — the paper's central methodology.

use crate::kind::FrameworkKind;
use crate::spec::{ArchSpec, LayerSpecEntry as L};
use dlbench_data::{DatasetKind, Preprocessing};
use dlbench_optim::LrPolicy;

/// Training algorithm selector (paper Tables II/III "Algorithm" row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with the given momentum.
    Sgd {
        /// Momentum coefficient (0 disables).
        momentum: f32,
    },
    /// Adam with canonical betas.
    Adam,
}

impl OptimizerKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            OptimizerKind::Sgd { .. } => "SGD",
            OptimizerKind::Adam => "Adam",
        }
    }
}

/// Default regularization method (the paper's Table IX contrast:
/// TensorFlow dropout vs Caffe weight decay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Regularizer {
    /// Dropout with the given rate (applied inside the architecture).
    Dropout {
        /// Drop probability.
        rate: f32,
    },
    /// L2 weight decay folded into the optimizer.
    WeightDecay {
        /// Decay coefficient.
        lambda: f32,
    },
    /// No regularization.
    None,
}

impl Regularizer {
    /// Display name for configuration tables.
    pub fn name(&self) -> &'static str {
        match self {
            Regularizer::Dropout { .. } => "drop out",
            Regularizer::WeightDecay { .. } => "weight decay",
            Regularizer::None => "none",
        }
    }

    /// The weight-decay lambda the optimizer should apply (0 unless the
    /// regularizer is weight decay).
    pub fn weight_decay_lambda(&self) -> f32 {
        match self {
            Regularizer::WeightDecay { lambda } => *lambda,
            _ => 0.0,
        }
    }
}

/// A learning-rate schedule with boundaries expressed as *fractions of
/// the iteration budget*, so the same schedule shape applies at paper
/// scale and at reduced benchmark scales.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleSpec {
    /// Constant rate.
    Fixed,
    /// Caffe `inv` policy; `gamma` is calibrated for the *paper*
    /// iteration count and rescaled for shorter runs.
    Inverse {
        /// Per-iteration decay rate at paper scale.
        gamma: f32,
        /// Decay exponent.
        power: f32,
    },
    /// Caffe CIFAR-10 two-phase schedule: drop to `second_lr` after
    /// `frac` of the budget.
    TwoPhase {
        /// Second-phase learning rate.
        second_lr: f32,
        /// Fraction of the budget where phase 2 begins.
        frac: f32,
    },
    /// Multiply by `gamma` every `frac` of the budget (TensorFlow's
    /// CIFAR-10 exponential decay).
    StepDecay {
        /// Decay factor.
        gamma: f32,
        /// Interval as a fraction of the budget.
        frac: f32,
    },
}

impl ScheduleSpec {
    /// Resolves the schedule into an absolute [`LrPolicy`] for a run of
    /// `exec_iters` iterations standing in for `paper_iters`.
    pub fn resolve(&self, base_lr: f32, exec_iters: usize, paper_iters: usize) -> LrPolicy {
        match *self {
            ScheduleSpec::Fixed => LrPolicy::Fixed,
            ScheduleSpec::Inverse { gamma, power } => {
                // Keep the *endpoint* decay equal: gamma scales with the
                // compression ratio.
                let ratio = paper_iters as f32 / exec_iters.max(1) as f32;
                LrPolicy::Inverse { gamma: gamma * ratio, power }
            }
            ScheduleSpec::TwoPhase { second_lr, frac } => LrPolicy::MultiStep {
                steps: vec![
                    (0, base_lr),
                    (((exec_iters as f32) * frac).round() as usize, second_lr),
                ],
            },
            ScheduleSpec::StepDecay { gamma, frac } => LrPolicy::Step {
                gamma,
                every: (((exec_iters as f32) * frac).round() as usize).max(1),
            },
        }
    }
}

/// One framework's default training hyperparameters for one dataset
/// (a row bundle from paper Table II or III).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Training algorithm.
    pub algorithm: OptimizerKind,
    /// Base learning rate.
    pub base_lr: f32,
    /// Learning-rate schedule.
    pub schedule: ScheduleSpec,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Iteration budget at paper scale (`max_steps`/`max_iter`).
    pub max_iterations: usize,
    /// Default input pipeline.
    pub preprocessing: Preprocessing,
    /// Default regularizer.
    pub regularizer: Regularizer,
}

impl TrainingConfig {
    /// Epochs implied by the paper's budget:
    /// `max_iterations * batch_size / train_samples` (the formula the
    /// paper uses below Table II).
    pub fn paper_epochs(&self, dataset: DatasetKind) -> f32 {
        (self.max_iterations * self.batch_size) as f32 / dataset.paper_train_samples() as f32
    }
}

/// Default training hyperparameters (paper Tables II and III).
pub fn training_defaults(fw: FrameworkKind, ds: DatasetKind) -> TrainingConfig {
    use DatasetKind::*;
    use FrameworkKind::*;
    match (fw, ds) {
        (TensorFlow, Mnist) => TrainingConfig {
            algorithm: OptimizerKind::Adam,
            base_lr: 1e-4,
            schedule: ScheduleSpec::Fixed,
            batch_size: 50,
            max_iterations: 20_000,
            preprocessing: Preprocessing::Raw01,
            regularizer: Regularizer::Dropout { rate: 0.5 },
        },
        (Caffe, Mnist) => TrainingConfig {
            algorithm: OptimizerKind::Sgd { momentum: 0.9 },
            base_lr: 0.01,
            schedule: ScheduleSpec::Inverse { gamma: 1e-4, power: 0.75 },
            batch_size: 64,
            max_iterations: 10_000,
            preprocessing: Preprocessing::Raw01,
            regularizer: Regularizer::WeightDecay { lambda: 5e-4 },
        },
        (Torch, Mnist) => TrainingConfig {
            algorithm: OptimizerKind::Sgd { momentum: 0.0 },
            base_lr: 0.05,
            schedule: ScheduleSpec::Fixed,
            batch_size: 10,
            max_iterations: 120_000,
            preprocessing: Preprocessing::Standardize,
            regularizer: Regularizer::None,
        },
        (TensorFlow, Cifar10) => TrainingConfig {
            algorithm: OptimizerKind::Sgd { momentum: 0.0 },
            base_lr: 0.1,
            schedule: ScheduleSpec::StepDecay { gamma: 0.1, frac: 0.35 },
            batch_size: 128,
            max_iterations: 1_000_000,
            preprocessing: Preprocessing::Standardize,
            regularizer: Regularizer::WeightDecay { lambda: 0.004 },
        },
        (Caffe, Cifar10) => TrainingConfig {
            algorithm: OptimizerKind::Sgd { momentum: 0.9 },
            base_lr: 0.001,
            schedule: ScheduleSpec::TwoPhase { second_lr: 1e-4, frac: 0.8 },
            batch_size: 100,
            max_iterations: 5_000,
            preprocessing: Preprocessing::MeanSubtract,
            regularizer: Regularizer::WeightDecay { lambda: 0.004 },
        },
        (Torch, Cifar10) => TrainingConfig {
            algorithm: OptimizerKind::Sgd { momentum: 0.0 },
            base_lr: 0.001,
            schedule: ScheduleSpec::Fixed,
            batch_size: 1,
            max_iterations: 100_000,
            preprocessing: Preprocessing::Standardize,
            regularizer: Regularizer::None,
        },
        // Text axis (no paper table — settings follow each framework's
        // canonical sentence-CNN recipe, keeping the personality
        // contrasts: TF Adam+dropout, Caffe momentum-SGD+decay with an
        // inverse schedule, Torch plain SGD).
        (TensorFlow, Imdb) => TrainingConfig {
            algorithm: OptimizerKind::Adam,
            base_lr: 1e-3,
            schedule: ScheduleSpec::Fixed,
            batch_size: 64,
            max_iterations: 10_000,
            preprocessing: Preprocessing::TokenIds,
            regularizer: Regularizer::Dropout { rate: 0.5 },
        },
        (Caffe, Imdb) => TrainingConfig {
            algorithm: OptimizerKind::Sgd { momentum: 0.9 },
            base_lr: 0.01,
            schedule: ScheduleSpec::Inverse { gamma: 1e-4, power: 0.75 },
            batch_size: 50,
            max_iterations: 10_000,
            preprocessing: Preprocessing::TokenIds,
            regularizer: Regularizer::WeightDecay { lambda: 5e-4 },
        },
        (Torch, Imdb) => TrainingConfig {
            algorithm: OptimizerKind::Sgd { momentum: 0.0 },
            base_lr: 0.05,
            schedule: ScheduleSpec::Fixed,
            batch_size: 32,
            max_iterations: 25_000,
            preprocessing: Preprocessing::TokenIds,
            regularizer: Regularizer::None,
        },
    }
}

/// Default network architectures (paper Tables IV and V).
pub fn arch_defaults(fw: FrameworkKind, ds: DatasetKind) -> ArchSpec {
    use DatasetKind::*;
    use FrameworkKind::*;
    match (fw, ds) {
        // Table IV — MNIST (LeNet variants).
        (TensorFlow, Mnist) => ArchSpec::new(
            "TF-MNIST",
            vec![
                L::Conv { out: 32, kernel: 5, stride: 1, pad: 2 },
                L::Relu,
                L::MaxPool { kernel: 2, stride: 2, ceil: false },
                L::Conv { out: 64, kernel: 5, stride: 1, pad: 2 },
                L::Relu,
                L::MaxPool { kernel: 2, stride: 2, ceil: false },
                L::Fc { out: 1024 },
                L::Relu,
                L::Dropout { rate: 0.5 },
                L::Fc { out: 10 },
            ],
        ),
        (Caffe, Mnist) => ArchSpec::new(
            "Caffe-MNIST",
            vec![
                L::Conv { out: 20, kernel: 5, stride: 1, pad: 0 },
                L::MaxPool { kernel: 2, stride: 2, ceil: true },
                L::Conv { out: 50, kernel: 5, stride: 1, pad: 0 },
                L::MaxPool { kernel: 2, stride: 2, ceil: true },
                L::Fc { out: 500 },
                L::Relu,
                L::Fc { out: 10 },
            ],
        ),
        (Torch, Mnist) => ArchSpec::new(
            "Torch-MNIST",
            vec![
                L::Conv { out: 32, kernel: 5, stride: 1, pad: 0 },
                L::Tanh,
                L::MaxPool { kernel: 3, stride: 2, ceil: false },
                L::Conv { out: 64, kernel: 5, stride: 1, pad: 0 },
                L::Tanh,
                L::MaxPool { kernel: 3, stride: 2, ceil: false },
                L::Fc { out: 200 },
                L::Tanh,
                L::Fc { out: 10 },
            ],
        ),
        // Table V — CIFAR-10.
        (TensorFlow, Cifar10) => ArchSpec::new(
            "TF-CIFAR-10",
            vec![
                L::Conv { out: 64, kernel: 5, stride: 1, pad: 2 },
                L::Relu,
                L::MaxPool { kernel: 3, stride: 2, ceil: true },
                L::Lrn,
                L::Conv { out: 64, kernel: 5, stride: 1, pad: 2 },
                L::Relu,
                L::Lrn,
                L::MaxPool { kernel: 3, stride: 2, ceil: true },
                L::Fc { out: 384 },
                L::Relu,
                L::Fc { out: 192 },
                L::Relu,
                L::Fc { out: 10 },
            ],
        ),
        (Caffe, Cifar10) => ArchSpec::new(
            "Caffe-CIFAR-10",
            vec![
                L::Conv { out: 32, kernel: 5, stride: 1, pad: 2 },
                L::MaxPool { kernel: 3, stride: 2, ceil: true },
                L::Relu,
                L::Conv { out: 32, kernel: 5, stride: 1, pad: 2 },
                L::Relu,
                L::AvgPool { kernel: 3, stride: 2, ceil: true },
                L::Conv { out: 64, kernel: 5, stride: 1, pad: 2 },
                L::Relu,
                L::AvgPool { kernel: 3, stride: 2, ceil: true },
                L::Fc { out: 64 },
                L::Fc { out: 10 },
            ],
        ),
        (Torch, Cifar10) => ArchSpec::new(
            "Torch-CIFAR-10",
            vec![
                L::Conv { out: 16, kernel: 5, stride: 1, pad: 0 },
                L::Tanh,
                L::MaxPool { kernel: 2, stride: 2, ceil: false },
                L::Conv { out: 256, kernel: 5, stride: 1, pad: 0 },
                L::Tanh,
                L::MaxPool { kernel: 2, stride: 2, ceil: false },
                L::Fc { out: 128 },
                L::Tanh,
                L::Fc { out: 10 },
            ],
        ),
        // Text axis — Kim-style sentence CNNs (parallel 3/4/5-width
        // branches, max-over-time), differing in embedding width,
        // filter count and activation per personality. ReLU/Tanh after
        // the bank is equivalent to per-window activation because
        // max-over-time commutes with monotone functions.
        (TensorFlow, Imdb) => ArchSpec::new(
            "TF-IMDB",
            vec![
                L::Embed { vocab: dlbench_text::VOCAB, dim: 128 },
                L::ConvBank { filters: 128, widths: vec![3, 4, 5] },
                L::Relu,
                L::Dropout { rate: 0.5 },
                L::Fc { out: 2 },
            ],
        ),
        (Caffe, Imdb) => ArchSpec::new(
            "Caffe-IMDB",
            vec![
                L::Embed { vocab: dlbench_text::VOCAB, dim: 64 },
                L::ConvBank { filters: 100, widths: vec![3, 4, 5] },
                L::Relu,
                L::Fc { out: 2 },
            ],
        ),
        (Torch, Imdb) => ArchSpec::new(
            "Torch-IMDB",
            vec![
                L::Embed { vocab: dlbench_text::VOCAB, dim: 64 },
                L::ConvBank { filters: 64, widths: vec![3, 4, 5] },
                L::Tanh,
                L::Fc { out: 2 },
            ],
        ),
    }
}

/// A transplantable default setting: the hyperparameters, pipeline and
/// architecture that framework `owner` ships for dataset `tuned_for`.
///
/// The paper's experiments apply settings to *other* host frameworks
/// ("framework-dependent defaults") and *other* datasets
/// ("dataset-dependent defaults"); the host contributes its own weight
/// initializer and execution profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DefaultSetting {
    /// Framework whose defaults these are.
    pub owner: FrameworkKind,
    /// Dataset the defaults were tuned for.
    pub tuned_for: DatasetKind,
}

impl DefaultSetting {
    /// Creates a setting handle.
    pub fn new(owner: FrameworkKind, tuned_for: DatasetKind) -> Self {
        Self { owner, tuned_for }
    }

    /// The training hyperparameters of this setting.
    pub fn training(&self) -> TrainingConfig {
        training_defaults(self.owner, self.tuned_for)
    }

    /// The architecture of this setting.
    pub fn arch(&self) -> ArchSpec {
        arch_defaults(self.owner, self.tuned_for)
    }

    /// Label as used in the paper's figures, e.g. `"TF-MNIST"`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.owner.abbrev(), self.tuned_for.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_mnist_hyperparameters() {
        let tf = training_defaults(FrameworkKind::TensorFlow, DatasetKind::Mnist);
        assert_eq!(tf.algorithm, OptimizerKind::Adam);
        assert_eq!(tf.base_lr, 1e-4);
        assert_eq!(tf.batch_size, 50);
        assert_eq!(tf.max_iterations, 20_000);
        assert!((tf.paper_epochs(DatasetKind::Mnist) - 16.67).abs() < 0.01);

        let caffe = training_defaults(FrameworkKind::Caffe, DatasetKind::Mnist);
        assert_eq!(caffe.algorithm.name(), "SGD");
        assert_eq!(caffe.base_lr, 0.01);
        assert_eq!(caffe.batch_size, 64);
        assert_eq!(caffe.max_iterations, 10_000);
        assert!((caffe.paper_epochs(DatasetKind::Mnist) - 10.67).abs() < 0.01);

        let torch = training_defaults(FrameworkKind::Torch, DatasetKind::Mnist);
        assert_eq!(torch.base_lr, 0.05);
        assert_eq!(torch.batch_size, 10);
        assert_eq!(torch.max_iterations, 120_000);
        assert!((torch.paper_epochs(DatasetKind::Mnist) - 20.0).abs() < 0.01);
    }

    #[test]
    fn table_iii_cifar_hyperparameters() {
        let tf = training_defaults(FrameworkKind::TensorFlow, DatasetKind::Cifar10);
        assert_eq!(tf.algorithm.name(), "SGD");
        assert_eq!(tf.base_lr, 0.1);
        assert_eq!(tf.batch_size, 128);
        assert_eq!(tf.max_iterations, 1_000_000);
        assert!((tf.paper_epochs(DatasetKind::Cifar10) - 2560.0).abs() < 0.5);

        let caffe = training_defaults(FrameworkKind::Caffe, DatasetKind::Cifar10);
        assert_eq!(caffe.base_lr, 0.001);
        assert!(matches!(
            caffe.schedule,
            ScheduleSpec::TwoPhase { second_lr, .. } if second_lr == 1e-4
        ));
        assert!((caffe.paper_epochs(DatasetKind::Cifar10) - 10.0).abs() < 0.01);

        let torch = training_defaults(FrameworkKind::Torch, DatasetKind::Cifar10);
        assert_eq!(torch.batch_size, 1);
        assert_eq!(torch.max_iterations, 100_000);
        assert!((torch.paper_epochs(DatasetKind::Cifar10) - 2.0).abs() < 0.01);
        // Paper reports 20 epochs for Torch CIFAR-10 (its formula uses
        // 5,000-sample shards); we derive 2.0 from the full 50,000 set
        // and note the discrepancy — the *iteration budget* (100,000)
        // is what both agree on and what the timing model charges.
    }

    #[test]
    fn regularizer_contrast() {
        let tf = training_defaults(FrameworkKind::TensorFlow, DatasetKind::Mnist);
        assert!(matches!(tf.regularizer, Regularizer::Dropout { rate } if rate == 0.5));
        let caffe = training_defaults(FrameworkKind::Caffe, DatasetKind::Mnist);
        assert!(matches!(caffe.regularizer, Regularizer::WeightDecay { .. }));
        assert_eq!(caffe.regularizer.weight_decay_lambda(), 5e-4);
        assert_eq!(tf.regularizer.weight_decay_lambda(), 0.0);
    }

    #[test]
    fn schedule_resolution_scales_boundaries() {
        let two = ScheduleSpec::TwoPhase { second_lr: 1e-4, frac: 0.8 };
        let p = two.resolve(0.001, 100, 5_000);
        assert_eq!(p.rate(0.001, 79), 0.001);
        assert!((p.rate(0.001, 80) - 1e-4).abs() < 1e-9);

        let inv = ScheduleSpec::Inverse { gamma: 1e-4, power: 0.75 };
        let paper = inv.resolve(0.01, 10_000, 10_000);
        let short = inv.resolve(0.01, 100, 10_000);
        // Endpoint decay matches across compressions.
        assert!((paper.rate(0.01, 10_000) - short.rate(0.01, 100)).abs() < 1e-5);
    }

    #[test]
    fn setting_labels() {
        let s = DefaultSetting::new(FrameworkKind::Caffe, DatasetKind::Mnist);
        assert_eq!(s.label(), "Caffe-MNIST");
        assert_eq!(s.training().batch_size, 64);
        assert_eq!(s.arch().name, "Caffe-MNIST");
    }
}
