//! Property-based tests for layer invariants.

use dlbench_nn::{
    AvgPool2d, Conv2d, Dropout, Embedding, Initializer, Layer, Linear, MaxOverTime, MaxPool2d,
    ParamKind, Relu, SoftmaxCrossEntropy, Tanh,
};
use dlbench_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn maxpool_dominates_avgpool(
        n in 1usize..3, c in 1usize..4, hw in 2usize..8, k in 1usize..3, seed in 0u64..500,
    ) {
        prop_assume!(hw >= k);
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[n, c, hw, hw], 0.0, 1.0, &mut rng);
        let mut maxp = MaxPool2d::new(k, k, false);
        let mut avgp = AvgPool2d::new(k, k, false);
        let ym = maxp.forward(&x, false);
        let ya = avgp.forward(&x, false);
        prop_assert_eq!(ym.shape(), ya.shape());
        for (m, a) in ym.data().iter().zip(ya.data()) {
            prop_assert!(m >= a, "max {m} < avg {a}");
        }
    }

    #[test]
    fn relu_output_nonnegative_and_idempotent(len in 1usize..100, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[len], 0.0, 2.0, &mut rng);
        let mut relu = Relu::new();
        let y = relu.forward(&x, true);
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        let yy = relu.forward(&y, true);
        prop_assert_eq!(yy.data(), y.data());
    }

    #[test]
    fn tanh_bounded(len in 1usize..100, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[len], 0.0, 4.0, &mut rng);
        let mut tanh = Tanh::new();
        let y = tanh.forward(&x, true);
        prop_assert!(y.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn linear_is_affine(inf in 1usize..8, outf in 1usize..8, seed in 0u64..500) {
        // f(a x1 + (1-a) x2) == a f(x1) + (1-a) f(x2) for affine f.
        let mut rng = SeededRng::new(seed);
        let mut lin = Linear::new(inf, outf, Initializer::Xavier, &mut rng);
        let x1 = Tensor::randn(&[1, inf], 0.0, 1.0, &mut rng);
        let x2 = Tensor::randn(&[1, inf], 0.0, 1.0, &mut rng);
        let a = 0.3f32;
        let mix = x1.scale(a).add(&x2.scale(1.0 - a)).unwrap();
        let y_mix = lin.forward(&mix, false);
        let y1 = lin.forward(&x1, false);
        let y2 = lin.forward(&x2, false);
        let expect = y1.scale(a).add(&y2.scale(1.0 - a)).unwrap();
        for (m, e) in y_mix.data().iter().zip(expect.data()) {
            prop_assert!((m - e).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_translation_of_zero_input_is_bias(
        c in 1usize..3, oc in 1usize..4, hw in 5usize..9, seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut conv = Conv2d::new(
            c, oc, 3, 1, 1,
            Initializer::TruncatedNormal { std: 0.1, bias: 0.25 },
            &mut rng,
        );
        let x = Tensor::zeros(&[1, c, hw, hw]);
        let y = conv.forward(&x, false);
        prop_assert!(y.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn dropout_preserves_expectation(rate in 0.0f32..0.9, seed in 0u64..200) {
        let mut d = Dropout::new(rate, SeededRng::new(seed));
        let x = Tensor::ones(&[20_000]);
        let y = d.forward(&x, true);
        prop_assert!((y.mean() - 1.0).abs() < 0.1, "mean {} at rate {rate}", y.mean());
    }

    #[test]
    fn loss_nonnegative_and_grad_bounded(n in 1usize..6, c in 2usize..8, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let logits = Tensor::randn(&[n, c], 0.0, 3.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let mut loss = SoftmaxCrossEntropy::new();
        let (l, _) = loss.forward(&logits, &labels);
        prop_assert!(l >= 0.0);
        let g = loss.backward();
        // Each gradient entry is bounded by 1/N.
        prop_assert!(g.data().iter().all(|&v| v.abs() <= 1.0 / n as f32 + 1e-6));
    }

    #[test]
    fn pooling_backward_preserves_gradient_mass_avg(
        hw in 2usize..8, k in 1usize..3, seed in 0u64..300,
    ) {
        prop_assume!(hw % k == 0);
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[1, 1, hw, hw], 0.0, 1.0, &mut rng);
        let mut pool = AvgPool2d::new(k, k, false);
        let y = pool.forward(&x, true);
        let g = Tensor::ones(y.shape());
        let gx = pool.backward(&g);
        // Average pooling distributes each unit of gradient across its
        // window: total mass is conserved.
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-3);
    }

    #[test]
    fn embedding_scatter_add_is_partition_invariant(
        n in 2usize..5, l in 1usize..7, vocab in 2usize..10, dim in 1usize..6,
        split in 1usize..4, seed in 0u64..500,
    ) {
        // The table gradient of a batch must equal, bit for bit, the
        // accumulated gradients of any row partition of that batch —
        // the invariant the determinism gate relies on when the batch
        // sharding changes.
        let split = split.min(n - 1);
        let mut rng = SeededRng::new(seed);
        let mut emb = Embedding::new(vocab, dim, Initializer::Xavier, &mut rng);
        let tokens: Vec<f32> = (0..n * l).map(|_| rng.index(vocab) as f32).collect();
        let x = Tensor::from_vec(&[n, 1, l, 1], tokens.clone()).unwrap();
        let g = Tensor::randn(&[n, 1, l, dim], 0.0, 1.0, &mut rng);

        emb.forward(&x, true);
        emb.zero_grads();
        emb.backward(&g);
        let whole = emb.params()[0].grad.clone();

        emb.zero_grads();
        for (lo, hi) in [(0, split), (split, n)] {
            let xs = Tensor::from_vec(&[hi - lo, 1, l, 1], tokens[lo * l..hi * l].to_vec())
                .unwrap();
            let gs = Tensor::from_vec(
                &[hi - lo, 1, l, dim],
                g.data()[lo * l * dim..hi * l * dim].to_vec(),
            )
            .unwrap();
            emb.forward(&xs, true);
            emb.backward(&gs);
        }
        let parts = emb.params()[0].grad.clone();
        prop_assert_eq!(whole.data(), parts.data());
    }

    #[test]
    fn embedding_absent_tokens_keep_exactly_zero_grad(
        n in 1usize..4, l in 1usize..6, dim in 1usize..5, seed in 0u64..500,
    ) {
        // Only even rows of the table are ever addressed; odd rows must
        // come out of backward with an exactly-zero gradient.
        let vocab = 10usize;
        let mut rng = SeededRng::new(seed);
        let mut emb = Embedding::new(vocab, dim, Initializer::Xavier, &mut rng);
        let tokens: Vec<f32> =
            (0..n * l).map(|_| (2 * rng.index(vocab / 2)) as f32).collect();
        let x = Tensor::from_vec(&[n, 1, l, 1], tokens).unwrap();
        emb.forward(&x, true);
        emb.zero_grads();
        let g = Tensor::randn(&[n, 1, l, dim], 0.0, 1.0, &mut rng);
        let gin = emb.backward(&g);
        // Discrete inputs: the input gradient is identically zero.
        prop_assert!(gin.data().iter().all(|&v| v == 0.0));
        let params = emb.params();
        prop_assert!(matches!(params[0].kind, ParamKind::Weight));
        let gt = params[0].grad.data();
        for row in (1..vocab).step_by(2) {
            prop_assert!(gt[row * dim..(row + 1) * dim].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn max_over_time_output_is_columnwise_max_and_mass_conserving(
        n in 1usize..4, f in 1usize..5, t in 1usize..8, seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::rand_uniform(&[n, f, t, 1], 0.0, 1.0, &mut rng);
        let mut pool = MaxOverTime::new();
        let y = pool.forward(&x, true);
        for nf in 0..n * f {
            let window = &x.data()[nf * t..(nf + 1) * t];
            let max = window.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(y.data()[nf], max);
        }
        let g = Tensor::rand_uniform(y.shape(), 0.5, 1.5, &mut rng);
        let gx = pool.backward(&g);
        // Each (sample, filter) routes its whole gradient to one step.
        prop_assert!((gx.sum() - g.sum()).abs() < 1e-4);
        let nonzero = gx.data().iter().filter(|&&v| v != 0.0).count();
        prop_assert!(nonzero <= n * f);
    }

    #[test]
    fn maxpool_backward_routes_only_to_argmax(
        n in 1usize..3, c in 1usize..3, hw in 2usize..9, k in 1usize..4, seed in 0u64..500,
    ) {
        prop_assume!(hw >= k);
        let mut rng = SeededRng::new(seed);
        // Continuous draws: ties have measure zero, so every window has
        // a unique argmax and the expected routing is unambiguous.
        let x = Tensor::rand_uniform(&[n, c, hw, hw], 0.0, 1.0, &mut rng);
        let mut pool = MaxPool2d::new(k, k, false);
        let y = pool.forward(&x, true);
        // Strictly positive upstream gradient: a misrouted entry can
        // never cancel to zero by accident.
        let g = Tensor::rand_uniform(y.shape(), 0.5, 1.5, &mut rng);
        let gx = pool.backward(&g);
        let (oh, ow) = (y.shape()[2], y.shape()[3]);
        let mut expect = vec![0.0f32; x.len()];
        for ni in 0..n {
            for ci in 0..c {
                for i in 0..oh {
                    for j in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for di in 0..k {
                            for dj in 0..k {
                                let idx =
                                    ((ni * c + ci) * hw + i * k + di) * hw + j * k + dj;
                                if x.data()[idx] > best {
                                    best = x.data()[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        expect[best_idx] += g.data()[((ni * c + ci) * oh + i) * ow + j];
                    }
                }
            }
        }
        // Gradient lands exactly on the argmax of each window — and
        // nowhere else (uncovered pixels and non-max positions stay 0).
        prop_assert_eq!(gx.data(), &expect[..]);
    }
}
