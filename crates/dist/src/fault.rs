//! Fault and straggler injection, plus straggler detection.
//!
//! Failures and slowdowns are *control-plane* events: they move shards
//! between workers and stretch simulated time, but because shards and
//! their reduction order are canonical (see [`crate::shard`]), they can
//! never change the trained parameters.

use std::collections::{HashMap, HashSet};

/// Kill a worker: it exits abruptly upon receiving its first compute
/// command at or after `step`, dropping its channels mid-epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    /// Rank to kill.
    pub worker: usize,
    /// Step at which the worker dies.
    pub step: usize,
}

/// Slow a worker down: its simulated per-shard compute time is
/// multiplied by `factor` from `from_step` on. Real arithmetic is
/// unaffected — stragglers are a timing phenomenon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Rank to slow down.
    pub worker: usize,
    /// Compute-time multiplier (≥ 1 slows the worker down).
    pub factor: f64,
    /// First step the slowdown applies to.
    pub from_step: usize,
}

/// A schedule of injected faults for one distributed run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Worker kills.
    pub kills: Vec<Kill>,
    /// Worker slowdowns.
    pub stragglers: Vec<Straggler>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.stragglers.is_empty()
    }

    /// The step at which `worker` is scheduled to die, if any (the
    /// earliest when listed multiple times).
    pub fn kill_step(&self, worker: usize) -> Option<usize> {
        self.kills.iter().filter(|k| k.worker == worker).map(|k| k.step).min()
    }

    /// The compute-time multiplier in effect for `worker` at `step`
    /// (product of all active slowdowns; 1.0 when none).
    pub fn straggle_factor(&self, worker: usize, step: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.worker == worker && step >= s.from_step)
            .map(|s| s.factor)
            .product()
    }
}

/// A worker must exceed the median per-sample time by this ratio to
/// count as straggling.
const STRAGGLER_RATIO: f64 = 1.75;

/// Consecutive straggling steps before the detector reacts (a one-step
/// hiccup is not a straggler).
const STRAGGLER_STREAK: usize = 3;

/// Detects persistent stragglers from simulated per-sample compute
/// times and proposes throughput weights for rebalancing.
///
/// A worker whose per-sample time exceeds [`STRAGGLER_RATIO`] times the
/// step median for [`STRAGGLER_STREAK`] consecutive observations is
/// flagged once, with a weight of `median / per_sample` (clamped to
/// `[0.1, 1.0]`) — i.e. the scheduler hands it work in proportion to
/// its observed throughput.
#[derive(Debug, Default)]
pub struct StragglerDetector {
    streaks: HashMap<usize, usize>,
    flagged: HashSet<usize>,
}

/// A straggler the detector has just flagged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Flagged rank.
    pub worker: usize,
    /// Proposed throughput weight in `[0.1, 1.0]`.
    pub weight: f64,
    /// Observed slowdown ratio versus the step median.
    pub ratio: f64,
}

impl StragglerDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one step's `(rank, per-sample seconds)` observations
    /// (workers that computed no samples this step are simply absent).
    /// Returns newly flagged stragglers, in rank order.
    pub fn observe(&mut self, per_sample: &[(usize, f64)]) -> Vec<Detection> {
        if per_sample.len() < 2 {
            return Vec::new(); // no peer group to compare against
        }
        let mut times: Vec<f64> = per_sample.iter().map(|&(_, t)| t).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("sim times are finite"));
        // Lower median: with an even peer group (2 workers especially)
        // the upper middle would be the straggler itself, hiding it.
        let median = times[(times.len() - 1) / 2];
        if median <= 0.0 {
            return Vec::new();
        }
        let mut detections = Vec::new();
        for &(rank, t) in per_sample {
            let ratio = t / median;
            if ratio > STRAGGLER_RATIO && !self.flagged.contains(&rank) {
                let streak = self.streaks.entry(rank).or_insert(0);
                *streak += 1;
                if *streak >= STRAGGLER_STREAK {
                    self.flagged.insert(rank);
                    detections.push(Detection {
                        worker: rank,
                        weight: (1.0 / ratio).clamp(0.1, 1.0),
                        ratio,
                    });
                }
            } else {
                self.streaks.insert(rank, 0);
            }
        }
        detections.sort_by_key(|d| d.worker);
        detections
    }

    /// Ranks flagged so far.
    pub fn flagged(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.flagged.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_composes_and_gates_on_step() {
        let plan = FaultPlan {
            kills: vec![],
            stragglers: vec![
                Straggler { worker: 1, factor: 2.0, from_step: 5 },
                Straggler { worker: 1, factor: 3.0, from_step: 10 },
            ],
        };
        assert_eq!(plan.straggle_factor(1, 0), 1.0);
        assert_eq!(plan.straggle_factor(1, 5), 2.0);
        assert_eq!(plan.straggle_factor(1, 10), 6.0);
        assert_eq!(plan.straggle_factor(0, 10), 1.0);
    }

    #[test]
    fn earliest_kill_wins() {
        let plan = FaultPlan {
            kills: vec![Kill { worker: 2, step: 9 }, Kill { worker: 2, step: 4 }],
            stragglers: vec![],
        };
        assert_eq!(plan.kill_step(2), Some(4));
        assert_eq!(plan.kill_step(0), None);
    }

    #[test]
    fn detector_needs_a_persistent_streak() {
        let mut d = StragglerDetector::new();
        let slow = [(0usize, 1.0f64), (1, 1.0), (2, 4.0)];
        let ok = [(0usize, 1.0f64), (1, 1.0), (2, 1.0)];
        assert!(d.observe(&slow).is_empty());
        assert!(d.observe(&slow).is_empty());
        // A recovery resets the streak.
        assert!(d.observe(&ok).is_empty());
        assert!(d.observe(&slow).is_empty());
        assert!(d.observe(&slow).is_empty());
        let hits = d.observe(&slow);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].worker, 2);
        assert!((hits[0].weight - 0.25).abs() < 1e-9, "weight {}", hits[0].weight);
        // Flagged once, not re-reported.
        assert!(d.observe(&slow).is_empty());
        assert_eq!(d.flagged(), vec![2]);
    }

    #[test]
    fn detector_ignores_lone_workers() {
        let mut d = StragglerDetector::new();
        for _ in 0..10 {
            assert!(d.observe(&[(0, 9.0)]).is_empty());
        }
    }
}
