//! Property tests for the distributed gradient-aggregation math.
//!
//! The crate's central claim, exercised over randomized models and
//! batches: cutting a batch into canonical shards and aggregating
//! per-shard gradients through the fixed-order tree reduction yields
//! the same bits no matter how many workers the shards were spread
//! over or in what order their contributions arrived — and the result
//! matches the whole-batch gradient to floating-point tolerance (it
//! cannot match it bitwise: summation order differs, which is exactly
//! why the reduction must be canonicalized in the first place). The
//! naive presentation-order fold matches only within tolerance.

use dlbench_dist::{assign_shards, naive_sum, shard_batch, tree_reduce, ShardGrad};
use dlbench_nn::{Initializer, Linear, Network, Relu, SoftmaxCrossEntropy};
use dlbench_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

const FEATURES: usize = 6;
const CLASSES: usize = 5;

fn model(seed: u64) -> Network {
    let mut rng = SeededRng::new(seed);
    let mut net = Network::new("prop");
    net.push(Linear::new(FEATURES, 8, Initializer::Xavier, &mut rng));
    net.push(Relu::new());
    net.push(Linear::new(8, CLASSES, Initializer::Xavier, &mut rng));
    net
}

fn batch(seed: u64, n: usize) -> (Tensor, Vec<usize>) {
    let mut rng = SeededRng::new(seed ^ 0xB47C);
    let x = Tensor::randn(&[n, FEATURES], 0.0, 1.0, &mut rng);
    let labels = (0..n).map(|_| rng.index(CLASSES)).collect();
    (x, labels)
}

/// Whole-batch gradient (the single-node reference).
fn whole_batch_grads(net: &mut Network, x: &Tensor, labels: &[usize]) -> Vec<Tensor> {
    let mut loss = SoftmaxCrossEntropy::new();
    let logits = net.forward(x, false);
    loss.forward(&logits, labels);
    net.zero_grads();
    net.backward(&loss.backward());
    net.params().iter().map(|p| p.grad.clone()).collect()
}

/// Per-shard gradients scaled by `n_shard / n_batch`, exactly as the
/// worker loop computes them.
fn shard_grads(net: &mut Network, x: &Tensor, labels: &[usize]) -> Vec<ShardGrad> {
    let n = labels.len();
    let row = x.len() / n;
    let shards = shard_batch(&(0..n).collect::<Vec<_>>());
    shards
        .into_iter()
        .map(|shard| {
            let rows: Vec<f32> = shard
                .indices
                .iter()
                .flat_map(|&i| x.data()[i * row..(i + 1) * row].iter().copied())
                .collect();
            let sx = Tensor::from_vec(&[shard.indices.len(), row], rows).unwrap();
            let sl: Vec<usize> = shard.indices.iter().map(|&i| labels[i]).collect();
            let mut loss = SoftmaxCrossEntropy::new();
            let logits = net.forward(&sx, false);
            loss.forward(&logits, &sl);
            let mut g = loss.backward();
            g.scale_assign(shard.indices.len() as f32 / n as f32);
            net.zero_grads();
            net.backward(&g);
            ShardGrad {
                shard: shard.id,
                grads: net.params().iter().map(|p| p.grad.clone()).collect(),
            }
        })
        .collect()
}

fn max_rel_err(a: &[Tensor], b: &[Tensor]) -> f32 {
    let mut worst = 0.0f32;
    for (ta, tb) in a.iter().zip(b) {
        for (&va, &vb) in ta.data().iter().zip(tb.data()) {
            let scale = va.abs().max(vb.abs()).max(1.0);
            worst = worst.max((va - vb).abs() / scale);
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_reduce_is_bitwise_invariant_to_worker_partition(
        seed in 0u64..300,
        n in 2usize..24,
        k1 in 1usize..6,
        k2 in 1usize..6,
    ) {
        let mut net = model(seed);
        let (x, labels) = batch(seed, n);
        let sets = shard_grads(&mut net, &x, &labels);

        // Reference: shards reduced straight from their canonical order.
        let reference = tree_reduce(sets.clone());

        // Spread the same shards over k1 and then k2 "workers" with
        // arbitrary weights, concatenate each worker's local sets in
        // worker order (the order the driver would collect acks), and
        // reduce. The partition must be invisible — bit for bit.
        for (k, wseed) in [(k1, seed * 31 + 1), (k2, seed * 31 + 7)] {
            let live: Vec<usize> = (0..k).collect();
            let mut wrng = SeededRng::new(wseed);
            let weights: Vec<f64> =
                (0..k).map(|_| wrng.uniform(0.25, 1.0) as f64).collect();
            let by_worker = assign_shards(
                shard_batch(&(0..n).collect::<Vec<_>>()),
                &live,
                &weights,
            );
            let mut collected: Vec<ShardGrad> = Vec::new();
            for (_, shards) in by_worker {
                for s in shards {
                    collected.push(sets[s.id].clone());
                }
            }
            let reduced = tree_reduce(collected);
            prop_assert_eq!(
                reduced.len(), reference.len(),
                "parameter count must not depend on partition"
            );
            for (a, b) in reduced.iter().zip(&reference) {
                prop_assert_eq!(a, b, "partition over {} workers changed bits", k);
            }
        }
    }

    #[test]
    fn sharded_aggregate_matches_whole_batch_gradient(
        seed in 0u64..300,
        n in 2usize..24,
    ) {
        let mut net = model(seed);
        let (x, labels) = batch(seed, n);
        let whole = whole_batch_grads(&mut net, &x, &labels);
        let sharded = tree_reduce(shard_grads(&mut net, &x, &labels));
        prop_assert_eq!(whole.len(), sharded.len());
        let err = max_rel_err(&whole, &sharded);
        // Tolerance, not bitwise: the whole-batch GEMM accumulates in a
        // different order than the per-shard sums.
        prop_assert!(err < 1e-4, "sharded vs whole-batch rel err {err}");
    }

    #[test]
    fn naive_fold_agrees_with_tree_only_to_tolerance(
        seed in 0u64..300,
        n in 2usize..24,
        rot in 0usize..8,
    ) {
        let mut net = model(seed);
        let (x, labels) = batch(seed, n);
        let sets = shard_grads(&mut net, &x, &labels);
        let tree = tree_reduce(sets.clone());
        // Present the sets to the naive fold in a rotated order, as a
        // non-deterministic fabric might deliver them.
        let mut rotated = sets;
        let r = rot % rotated.len().max(1);
        rotated.rotate_left(r);
        let naive = naive_sum(&rotated);
        let err = max_rel_err(&tree, &naive);
        prop_assert!(err < 1e-4, "naive vs tree rel err {err}");
    }
}
