//! Pointwise activation layers.

use crate::layer::Layer;
use crate::profile::LayerCost;
use dlbench_tensor::Tensor;

/// Rectified linear unit, `y = max(0, x)` (TensorFlow and Caffe default).
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn summary(&self) -> String {
        "ReLU".to_string()
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = input.data().iter().map(|&v| v > 0.0).collect();
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.len(), self.mask.len(), "backward before forward");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&self.mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn cost(&self, input_shape: &[usize]) -> LayerCost {
        let n: u64 = input_shape.iter().product::<usize>() as u64;
        LayerCost {
            fwd_flops: n,
            bwd_flops: n,
            params: 0,
            activations: n,
            fwd_kernels: 1,
            bwd_kernels: 1,
        }
    }
}

/// Hyperbolic tangent activation (Torch7's LeNet default).
#[derive(Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn summary(&self) -> String {
        "Tanh".to_string()
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cached_output.as_ref().expect("backward before forward");
        assert_eq!(grad_out.len(), y.len(), "grad shape mismatch");
        let mut g = grad_out.clone();
        for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
            *gv *= 1.0 - yv * yv;
        }
        g
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn cost(&self, input_shape: &[usize]) -> LayerCost {
        let n: u64 = input_shape.iter().product::<usize>() as u64;
        LayerCost {
            // tanh ≈ 8 flops per element on the reference device model.
            fwd_flops: 8 * n,
            bwd_flops: 3 * n,
            params: 0,
            activations: n,
            fwd_kernels: 1,
            bwd_kernels: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::ones(&[4]);
        let gx = relu.backward(&g);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut tanh = Tanh::new();
        let x = Tensor::from_vec(&[3], vec![-0.7, 0.1, 1.3]).unwrap();
        tanh.forward(&x, true);
        let gx = tanh.backward(&Tensor::ones(&[3]));
        let eps = 1e-3f32;
        for i in 0..3 {
            let num = ((x.data()[i] + eps).tanh() - (x.data()[i] - eps).tanh()) / (2.0 * eps);
            assert!((gx.data()[i] - num).abs() < 1e-4);
        }
    }

    #[test]
    fn shapes_pass_through() {
        let relu = Relu::new();
        assert_eq!(relu.output_shape(&[2, 3, 4, 5]), vec![2, 3, 4, 5]);
        let tanh = Tanh::new();
        assert_eq!(tanh.output_shape(&[7]), vec![7]);
    }
}
