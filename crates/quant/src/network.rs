//! The quantized network container and its checkpoint mapping.

use crate::layers::{QConv1dBank, QConv2d, QEmbedding, QLayer, QLinear};
use crate::qtensor::QTensor;
use dlbench_json::JsonValue;
use dlbench_nn::{CheckpointError, Conv1dBank, Conv2d, Embedding, Linear, Network, QuantEntry};
use dlbench_tensor::Tensor;
use dlbench_trace::{span, Category};

/// Calibration record for one quantized layer — what the observer saw
/// on the calibration shard and the quantizer derived from it. Surfaced
/// through `/metrics`, report facts and the `dlbench quantize` summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCalibration {
    /// Diagnostic label (`"conv2d[0]"`, `"linear[4]"` — kind plus
    /// position in the stack).
    pub layer: String,
    /// Absolute minimum activation observed on the shard.
    pub observed_min: f32,
    /// Absolute maximum activation observed on the shard.
    pub observed_max: f32,
    /// Lower edge of the calibrated (EMA percentile) range.
    pub range_lo: f32,
    /// Upper edge of the calibrated range.
    pub range_hi: f32,
    /// Derived activation quantization step.
    pub scale: f32,
    /// Derived activation zero point.
    pub zero_point: i8,
    /// Fraction of shard values falling outside the calibrated range
    /// (clipped by the quantizer).
    pub clipped_fraction: f32,
}

impl LayerCalibration {
    /// JSON object for metrics endpoints and reports.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("layer".into(), JsonValue::from(self.layer.as_str())),
            ("observed_min".into(), JsonValue::from(self.observed_min)),
            ("observed_max".into(), JsonValue::from(self.observed_max)),
            ("range_lo".into(), JsonValue::from(self.range_lo)),
            ("range_hi".into(), JsonValue::from(self.range_hi)),
            ("scale".into(), JsonValue::from(self.scale)),
            ("zero_point".into(), JsonValue::from(self.zero_point as f64)),
            ("clipped_fraction".into(), JsonValue::from(self.clipped_fraction)),
        ])
    }
}

/// An int8 inference network: the quantized counterparts of a trained
/// [`Network`]'s `Linear`/`Conv2d` layers interleaved with its original
/// fp32 layers as fallbacks, plus the calibration record each quantizer
/// came from.
///
/// Inference-only: there is no backward pass, and
/// [`QuantizedNetwork::forward`] rejects training mode.
pub struct QuantizedNetwork {
    name: String,
    layers: Vec<QLayer>,
    calibration: Vec<LayerCalibration>,
}

impl QuantizedNetwork {
    /// Assembles a network from its layers and per-quantized-layer
    /// calibration records.
    ///
    /// # Panics
    ///
    /// Panics if the calibration count disagrees with the number of
    /// quantized layers.
    pub(crate) fn new(
        name: String,
        layers: Vec<QLayer>,
        calibration: Vec<LayerCalibration>,
    ) -> Self {
        let quantized = layers.iter().filter(|l| l.is_quantized()).count();
        assert_eq!(calibration.len(), quantized, "one calibration record per quantized layer");
        Self { name, layers, calibration }
    }

    /// The network's diagnostic name (inherited from the fp32 source).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Number of layers running on the int8 path.
    pub fn num_quantized(&self) -> usize {
        self.layers.iter().filter(|l| l.is_quantized()).count()
    }

    /// Per-quantized-layer calibration records, in layer order.
    pub fn calibration(&self) -> &[LayerCalibration] {
        &self.calibration
    }

    /// The calibration records as a JSON array (the `/metrics` and
    /// report-fact payload).
    pub fn calibration_json(&self) -> JsonValue {
        JsonValue::Array(self.calibration.iter().map(LayerCalibration::to_json).collect())
    }

    /// One-line-per-layer description, quantized layers marked.
    pub fn describe(&self) -> Vec<String> {
        self.layers
            .iter()
            .map(|l| {
                if l.is_quantized() {
                    format!("{} (int8)", l.name())
                } else {
                    format!("{} (fp32 fallback)", l.name())
                }
            })
            .collect()
    }

    /// Runs all layers forward, returning logits. `train` must be
    /// `false` — quantized networks are inference-only.
    ///
    /// # Panics
    ///
    /// Panics if `train` is requested.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert!(!train, "quantized networks are inference-only");
        let mut x = input.clone();
        for layer in &mut self.layers {
            let _span = span(Category::Layer, layer.name());
            x = layer.forward(&x);
        }
        x
    }

    /// Runs layers `start..` forward on an intermediate activation —
    /// the int8 counterpart of `Network::forward_from`. The text
    /// robustness bench uses this to replay embedding-space adversarial
    /// examples (crafted against the fp32 model) through the quantized
    /// suffix: the first quantized layer re-quantizes the fp32
    /// activation with its frozen calibration parameters.
    ///
    /// # Panics
    ///
    /// Panics if `start` exceeds the layer count.
    pub fn forward_from(&mut self, start: usize, input: &Tensor) -> Tensor {
        assert!(
            start <= self.layers.len(),
            "forward_from({start}) on {} layers",
            self.layers.len()
        );
        let mut x = input.clone();
        for layer in &mut self.layers[start..] {
            let _span = span(Category::Layer, layer.name());
            x = layer.forward(&x);
        }
        x
    }

    /// Serializes the network as a version-2 checkpoint entry sequence.
    ///
    /// Each quantized `Linear`/`Conv2d` layer contributes four entries,
    /// in order: the `i8` weight tensor (symmetric, carrying the weight
    /// scale), the `f32` bias, a zero-length `i8` marker carrying the
    /// activation quantizer (scale + zero point), and an `f32` `[5]`
    /// statistics tensor (`observed_min`, `observed_max`, `range_lo`,
    /// `range_hi`, `clipped_fraction`). A quantized `Embedding` uses the
    /// same group with its table as the weight and a zero-length bias
    /// (the layer has none). A quantized `Conv1dBank` contributes one
    /// `(i8 weight, f32 bias)` pair per branch in branch order, then the
    /// shared activation marker and statistics. Fallback layers
    /// contribute one plain `f32` entry per parameter, in `params()`
    /// order.
    pub fn to_entries(&mut self) -> Vec<QuantEntry> {
        let mut entries = Vec::new();
        let mut cal = self.calibration.iter();
        for layer in &mut self.layers {
            match layer {
                QLayer::Linear(l) => {
                    let c = cal.next().expect("calibration per quantized layer");
                    let w = l.weight_t();
                    entries.push(QuantEntry::I8 {
                        dims: w.shape().to_vec(),
                        data: w.data().to_vec(),
                        scale: w.scale,
                        zero_point: w.zero_point,
                    });
                    entries.push(QuantEntry::F32 {
                        dims: vec![l.bias().len()],
                        data: l.bias().to_vec(),
                    });
                    push_act_and_stats(&mut entries, l.activation_params(), c);
                }
                QLayer::Conv2d(cv) => {
                    let c = cal.next().expect("calibration per quantized layer");
                    let w = cv.weight();
                    entries.push(QuantEntry::I8 {
                        dims: w.shape().to_vec(),
                        data: w.data().to_vec(),
                        scale: w.scale,
                        zero_point: w.zero_point,
                    });
                    entries.push(QuantEntry::F32 {
                        dims: vec![cv.bias().len()],
                        data: cv.bias().to_vec(),
                    });
                    push_act_and_stats(&mut entries, cv.activation_params(), c);
                }
                QLayer::Embedding(e) => {
                    let c = cal.next().expect("calibration per quantized layer");
                    let t = e.table();
                    entries.push(QuantEntry::I8 {
                        dims: t.shape().to_vec(),
                        data: t.data().to_vec(),
                        scale: t.scale,
                        zero_point: t.zero_point,
                    });
                    // The table has no bias; a zero-length entry keeps
                    // the four-entry group shape.
                    entries.push(QuantEntry::F32 { dims: vec![0], data: vec![] });
                    // The lookup ignores the input quantizer, but the
                    // marker still records what the observer derived so
                    // the calibration report round-trips.
                    push_act_and_stats(&mut entries, (c.scale, c.zero_point), c);
                }
                QLayer::Conv1dBank(bank) => {
                    let c = cal.next().expect("calibration per quantized layer");
                    for (w, bias) in bank.branch_parts() {
                        entries.push(QuantEntry::I8 {
                            dims: w.shape().to_vec(),
                            data: w.data().to_vec(),
                            scale: w.scale,
                            zero_point: w.zero_point,
                        });
                        entries
                            .push(QuantEntry::F32 { dims: vec![bias.len()], data: bias.to_vec() });
                    }
                    push_act_and_stats(&mut entries, bank.activation_params(), c);
                }
                QLayer::Fallback(l) => {
                    for p in l.params() {
                        entries.push(QuantEntry::F32 {
                            dims: p.value.shape().to_vec(),
                            data: p.value.data().to_vec(),
                        });
                    }
                }
            }
        }
        entries
    }

    /// Rebuilds a quantized network from a version-2 checkpoint entry
    /// sequence, validated against the freshly built fp32 architecture
    /// `arch` (the same network the checkpoint's training cell used).
    /// Stored int8 weights are adopted bit-for-bit — never re-quantized
    /// — so a save/load round trip preserves every output bit.
    ///
    /// All mismatches (entry count, dtype, shape) are structured
    /// [`CheckpointError::StructureMismatch`] values, never panics.
    pub fn from_entries(arch: Network, entries: &[QuantEntry]) -> Result<Self, CheckpointError> {
        let name = arch.name().to_string();
        let mut idx = 0usize;
        let mut next = |what: &str| {
            let i = idx;
            idx += 1;
            entries.get(i).map(|e| (i, e)).ok_or_else(|| {
                CheckpointError::StructureMismatch(format!(
                    "checkpoint ended early: expected {what}"
                ))
            })
        };
        let mut layers = Vec::new();
        let mut calibration = Vec::new();
        for (li, layer) in arch.into_layers().into_iter().enumerate() {
            if layer.as_any().is::<Linear>() {
                let lin = layer.into_any().downcast::<Linear>().expect("probed as Linear");
                let label = format!("linear[{li}]");
                let (weight, bias, act, stats) = read_group(&label, &mut next)?;
                let want = [lin.in_features(), lin.out_features()];
                if weight.shape() != want {
                    return Err(CheckpointError::StructureMismatch(format!(
                        "{label}: weight shape {:?} != expected {want:?}",
                        weight.shape()
                    )));
                }
                if bias.len() != lin.out_features() {
                    return Err(CheckpointError::StructureMismatch(format!(
                        "{label}: bias length {} != {}",
                        bias.len(),
                        lin.out_features()
                    )));
                }
                layers.push(QLayer::Linear(QLinear::from_parts(weight, bias, act.0, act.1)));
                calibration.push(stats_record(label, act, stats));
            } else if layer.as_any().is::<Conv2d>() {
                let conv = layer.into_any().downcast::<Conv2d>().expect("probed as Conv2d");
                let label = format!("conv2d[{li}]");
                let (weight, bias, act, stats) = read_group(&label, &mut next)?;
                let k = conv.kernel();
                let want = [conv.out_channels(), conv.in_channels() * k * k];
                if weight.shape() != want {
                    return Err(CheckpointError::StructureMismatch(format!(
                        "{label}: weight shape {:?} != expected {want:?}",
                        weight.shape()
                    )));
                }
                if bias.len() != conv.out_channels() {
                    return Err(CheckpointError::StructureMismatch(format!(
                        "{label}: bias length {} != {}",
                        bias.len(),
                        conv.out_channels()
                    )));
                }
                layers.push(QLayer::Conv2d(QConv2d::from_parts(
                    weight,
                    bias,
                    conv.in_channels(),
                    k,
                    conv.stride(),
                    conv.pad(),
                    act.0,
                    act.1,
                )));
                calibration.push(stats_record(label, act, stats));
            } else if layer.as_any().is::<Embedding>() {
                let emb = layer.into_any().downcast::<Embedding>().expect("probed as Embedding");
                let label = format!("embedding[{li}]");
                let (table, bias, act, stats) = read_group(&label, &mut next)?;
                let want = [emb.vocab(), emb.dim()];
                if table.shape() != want {
                    return Err(CheckpointError::StructureMismatch(format!(
                        "{label}: table shape {:?} != expected {want:?}",
                        table.shape()
                    )));
                }
                if !bias.is_empty() {
                    return Err(CheckpointError::StructureMismatch(format!(
                        "{label}: embeddings have no bias, found {} values",
                        bias.len()
                    )));
                }
                layers.push(QLayer::Embedding(QEmbedding::from_parts(table)));
                calibration.push(stats_record(label, act, stats));
            } else if layer.as_any().is::<Conv1dBank>() {
                let bank = layer.into_any().downcast::<Conv1dBank>().expect("probed as Conv1dBank");
                let label = format!("conv1d_bank[{li}]");
                let filters = bank.filters();
                let embed_dim = bank.convs()[0].embed_dim();
                let mut branches = Vec::new();
                for (bi, width) in bank.widths().into_iter().enumerate() {
                    let blabel = format!("{label} branch {bi}");
                    let weight = read_i8(&format!("{blabel} int8 weight"), &mut next)?;
                    let want = [filters, width * embed_dim];
                    if weight.shape() != want {
                        return Err(CheckpointError::StructureMismatch(format!(
                            "{blabel}: weight shape {:?} != expected {want:?}",
                            weight.shape()
                        )));
                    }
                    let bias = read_f32(&format!("{blabel} bias"), &mut next)?;
                    if bias.len() != filters {
                        return Err(CheckpointError::StructureMismatch(format!(
                            "{blabel}: bias length {} != {filters}",
                            bias.len()
                        )));
                    }
                    branches.push((weight, bias));
                }
                let act = read_act(&label, &mut next)?;
                let stats = read_stats(&label, &mut next)?;
                layers.push(QLayer::Conv1dBank(QConv1dBank::from_parts(
                    filters, embed_dim, branches, act.0, act.1,
                )));
                calibration.push(stats_record(label, act, stats));
            } else {
                let mut layer = layer;
                for p in layer.params() {
                    let (i, e) = next(&format!("fp32 parameter for layer {li}"))?;
                    match e {
                        QuantEntry::F32 { dims, data } if dims == p.value.shape() => {
                            p.value.data_mut().copy_from_slice(data);
                        }
                        QuantEntry::F32 { dims, .. } => {
                            return Err(CheckpointError::StructureMismatch(format!(
                                "entry {i}: fallback parameter shape {dims:?} != network \
                                 shape {:?}",
                                p.value.shape()
                            )));
                        }
                        QuantEntry::I8 { .. } => {
                            return Err(CheckpointError::StructureMismatch(format!(
                                "entry {i}: int8 entry where layer {li} expects an fp32 \
                                 parameter"
                            )));
                        }
                    }
                }
                layers.push(QLayer::Fallback(layer));
            }
        }
        let _ = next;
        if idx < entries.len() {
            return Err(CheckpointError::StructureMismatch(format!(
                "checkpoint has {} trailing entries starting at entry {idx}",
                entries.len() - idx
            )));
        }
        Ok(Self::new(name, layers, calibration))
    }
}

impl std::fmt::Debug for QuantizedNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedNetwork")
            .field("name", &self.name)
            .field("layers", &self.describe())
            .finish()
    }
}

/// Appends the activation-quantizer marker and statistics entries of
/// one quantized layer.
fn push_act_and_stats(entries: &mut Vec<QuantEntry>, act: (f32, i8), c: &LayerCalibration) {
    entries.push(QuantEntry::I8 { dims: vec![0], data: vec![], scale: act.0, zero_point: act.1 });
    entries.push(QuantEntry::F32 {
        dims: vec![5],
        data: vec![c.observed_min, c.observed_max, c.range_lo, c.range_hi, c.clipped_fraction],
    });
}

/// Builds the calibration record back from a checkpoint's activation
/// quantizer and statistics entries.
fn stats_record(layer: String, act: (f32, i8), stats: [f32; 5]) -> LayerCalibration {
    LayerCalibration {
        layer,
        observed_min: stats[0],
        observed_max: stats[1],
        range_lo: stats[2],
        range_hi: stats[3],
        scale: act.0,
        zero_point: act.1,
        clipped_fraction: stats[4],
    }
}

/// One decoded quantized-layer group: int8 weight, fp32 bias,
/// activation `(scale, zero_point)`, calibration statistics.
type LayerGroup = (QTensor, Vec<f32>, (f32, i8), [f32; 5]);

/// Reads one int8 tensor entry.
fn read_i8<'a, F>(what: &str, next: &mut F) -> Result<QTensor, CheckpointError>
where
    F: FnMut(&str) -> Result<(usize, &'a QuantEntry), CheckpointError>,
{
    match next(what)? {
        (_, QuantEntry::I8 { dims, data, scale, zero_point }) => {
            Ok(QTensor::from_parts(dims, data.clone(), *scale, *zero_point))
        }
        (i, _) => Err(CheckpointError::StructureMismatch(format!(
            "entry {i}: expected {what} (an int8 tensor)"
        ))),
    }
}

/// Reads one fp32 tensor entry.
fn read_f32<'a, F>(what: &str, next: &mut F) -> Result<Vec<f32>, CheckpointError>
where
    F: FnMut(&str) -> Result<(usize, &'a QuantEntry), CheckpointError>,
{
    match next(what)? {
        (_, QuantEntry::F32 { data, .. }) => Ok(data.clone()),
        (i, _) => Err(CheckpointError::StructureMismatch(format!(
            "entry {i}: expected {what} (an fp32 tensor)"
        ))),
    }
}

/// Reads the zero-length int8 marker carrying one layer's activation
/// quantizer.
fn read_act<'a, F>(label: &str, next: &mut F) -> Result<(f32, i8), CheckpointError>
where
    F: FnMut(&str) -> Result<(usize, &'a QuantEntry), CheckpointError>,
{
    match next(&format!("{label} activation quantizer"))? {
        (_, QuantEntry::I8 { data, scale, zero_point, .. }) if data.is_empty() => {
            Ok((*scale, *zero_point))
        }
        (i, _) => Err(CheckpointError::StructureMismatch(format!(
            "entry {i}: {label} expects a zero-length int8 activation-quantizer marker"
        ))),
    }
}

/// Reads the 5-value fp32 statistics tensor of one quantized layer.
fn read_stats<'a, F>(label: &str, next: &mut F) -> Result<[f32; 5], CheckpointError>
where
    F: FnMut(&str) -> Result<(usize, &'a QuantEntry), CheckpointError>,
{
    match next(&format!("{label} calibration statistics"))? {
        (_, QuantEntry::F32 { data, .. }) if data.len() == 5 => {
            Ok([data[0], data[1], data[2], data[3], data[4]])
        }
        (i, _) => Err(CheckpointError::StructureMismatch(format!(
            "entry {i}: {label} expects a 5-value fp32 statistics tensor"
        ))),
    }
}

/// Reads the four-entry group of one quantized layer: weight, bias,
/// activation marker, statistics.
fn read_group<'a, F>(label: &str, next: &mut F) -> Result<LayerGroup, CheckpointError>
where
    F: FnMut(&str) -> Result<(usize, &'a QuantEntry), CheckpointError>,
{
    let weight = read_i8(&format!("{label} int8 weight"), next)?;
    let bias = read_f32(&format!("{label} bias"), next)?;
    let act = read_act(label, next)?;
    let stats = read_stats(label, next)?;
    Ok((weight, bias, act, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlbench_nn::{Flatten, Initializer, MaxPool2d, Relu};
    use dlbench_tensor::SeededRng;

    fn arch(seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        let mut net = Network::new("qnet");
        net.push(Conv2d::new(1, 3, 3, 1, 1, Initializer::Xavier, &mut rng));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2, false));
        net.push(Flatten::new());
        net.push(Linear::new(3 * 4 * 4, 5, Initializer::Xavier, &mut rng));
        net
    }

    fn cal(layer: &str) -> LayerCalibration {
        LayerCalibration {
            layer: layer.into(),
            observed_min: -1.5,
            observed_max: 2.0,
            range_lo: -1.2,
            range_hi: 1.9,
            scale: 0.0122,
            zero_point: -30,
            clipped_fraction: 0.004,
        }
    }

    fn quantize_by_hand(net: Network) -> QuantizedNetwork {
        let name = net.name().to_string();
        let mut layers = Vec::new();
        let mut calibration = Vec::new();
        for (li, layer) in net.into_layers().into_iter().enumerate() {
            if layer.as_any().is::<Linear>() {
                let lin = layer.into_any().downcast::<Linear>().unwrap();
                layers.push(QLayer::Linear(QLinear::from_fp32(&lin, 0.0122, -30)));
                calibration.push(cal(&format!("linear[{li}]")));
            } else if layer.as_any().is::<Conv2d>() {
                let conv = layer.into_any().downcast::<Conv2d>().unwrap();
                layers.push(QLayer::Conv2d(QConv2d::from_fp32(&conv, 0.0122, -30)));
                calibration.push(cal(&format!("conv2d[{li}]")));
            } else {
                layers.push(QLayer::Fallback(layer));
            }
        }
        QuantizedNetwork::new(name, layers, calibration)
    }

    #[test]
    fn entries_roundtrip_preserves_every_output_bit() {
        let mut q = quantize_by_hand(arch(31));
        let mut rng = SeededRng::new(8);
        let x = Tensor::randn(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let before = q.forward(&x, false);
        let entries = q.to_entries();
        let mut back = QuantizedNetwork::from_entries(arch(99), &entries).unwrap();
        let after = back.forward(&x, false);
        assert!(before.data().iter().zip(after.data()).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(back.num_quantized(), 2);
        assert_eq!(back.calibration(), q.calibration());
    }

    #[test]
    fn from_entries_rejects_wrong_architecture_and_truncation() {
        let mut q = quantize_by_hand(arch(31));
        let entries = q.to_entries();
        // Wrong architecture: a different linear width.
        let mut rng = SeededRng::new(1);
        let mut other = Network::new("other");
        other.push(Linear::new(4, 4, Initializer::Xavier, &mut rng));
        let err = QuantizedNetwork::from_entries(other, &entries).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
        // Truncated entry list.
        let err = QuantizedNetwork::from_entries(arch(1), &entries[..3]).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
        // Trailing entries.
        let mut extra = entries.clone();
        extra.push(QuantEntry::F32 { dims: vec![1], data: vec![0.0] });
        let err = QuantizedNetwork::from_entries(arch(1), &extra).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
    }

    fn text_arch(seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        let mut net = Network::new("qtext");
        net.push(Embedding::new(20, 6, Initializer::Xavier, &mut rng));
        net.push(Conv1dBank::new(3, &[2, 3], 6, Initializer::Xavier, &mut rng));
        net.push(Relu::new());
        net.push(Linear::new(6, 2, Initializer::Xavier, &mut rng));
        net
    }

    fn quantize_text_by_hand(net: Network) -> QuantizedNetwork {
        let name = net.name().to_string();
        let mut layers = Vec::new();
        let mut calibration = Vec::new();
        for (li, layer) in net.into_layers().into_iter().enumerate() {
            if layer.as_any().is::<Embedding>() {
                let emb = layer.into_any().downcast::<Embedding>().unwrap();
                layers.push(QLayer::Embedding(crate::QEmbedding::from_fp32(&emb)));
                calibration.push(cal(&format!("embedding[{li}]")));
            } else if layer.as_any().is::<Conv1dBank>() {
                let bank = layer.into_any().downcast::<Conv1dBank>().unwrap();
                layers.push(QLayer::Conv1dBank(crate::QConv1dBank::from_fp32(&bank, 0.0122, -30)));
                calibration.push(cal(&format!("conv1d_bank[{li}]")));
            } else if layer.as_any().is::<Linear>() {
                let lin = layer.into_any().downcast::<Linear>().unwrap();
                layers.push(QLayer::Linear(QLinear::from_fp32(&lin, 0.0122, -30)));
                calibration.push(cal(&format!("linear[{li}]")));
            } else {
                layers.push(QLayer::Fallback(layer));
            }
        }
        QuantizedNetwork::new(name, layers, calibration)
    }

    fn token_batch() -> Tensor {
        let tokens: Vec<f32> = (0..2 * 7).map(|i| ((i * 13) % 20) as f32).collect();
        Tensor::from_vec(&[2, 1, 7, 1], tokens).unwrap()
    }

    #[test]
    fn text_entries_roundtrip_preserves_every_output_bit() {
        let mut q = quantize_text_by_hand(text_arch(41));
        let x = token_batch();
        let before = q.forward(&x, false);
        let entries = q.to_entries();
        let mut back = QuantizedNetwork::from_entries(text_arch(77), &entries).unwrap();
        let after = back.forward(&x, false);
        assert!(before.data().iter().zip(after.data()).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(back.num_quantized(), 3);
        assert_eq!(back.calibration(), q.calibration());
    }

    #[test]
    fn text_entries_reject_mismatched_tables_and_truncation() {
        let mut q = quantize_text_by_hand(text_arch(41));
        let entries = q.to_entries();
        // Wrong vocabulary: the target arch's table disagrees.
        let mut rng = SeededRng::new(2);
        let mut other = Network::new("other");
        other.push(Embedding::new(9, 6, Initializer::Xavier, &mut rng));
        other.push(Conv1dBank::new(3, &[2, 3], 6, Initializer::Xavier, &mut rng));
        other.push(Relu::new());
        other.push(Linear::new(6, 2, Initializer::Xavier, &mut rng));
        let err = QuantizedNetwork::from_entries(other, &entries).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
        // Truncated mid-bank: the second branch's bias is missing.
        let err = QuantizedNetwork::from_entries(text_arch(1), &entries[..7]).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
        // A non-empty embedding bias is rejected (embeddings have none).
        let mut forged = entries.clone();
        forged[1] = QuantEntry::F32 { dims: vec![1], data: vec![0.5] };
        let err = QuantizedNetwork::from_entries(text_arch(1), &forged).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
        // A bank branch weight with the wrong window width is rejected.
        let mut forged = entries.clone();
        forged[4] = QuantEntry::I8 {
            dims: vec![3, 4 * 6],
            data: vec![0; 3 * 4 * 6],
            scale: 0.01,
            zero_point: 0,
        };
        let err = QuantizedNetwork::from_entries(text_arch(1), &forged).unwrap_err();
        assert!(matches!(err, CheckpointError::StructureMismatch(_)), "{err}");
    }

    #[test]
    fn forward_rejects_training_mode() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut q = quantize_by_hand(arch(31));
            let x = Tensor::zeros(&[1, 1, 8, 8]);
            q.forward(&x, true);
        }));
        assert!(result.is_err(), "train=true must be rejected");
    }

    #[test]
    fn calibration_json_carries_all_fields() {
        let q = quantize_by_hand(arch(31));
        let json = q.calibration_json();
        let text = json.pretty();
        for field in [
            "layer",
            "observed_min",
            "observed_max",
            "range_lo",
            "range_hi",
            "scale",
            "zero_point",
            "clipped_fraction",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
