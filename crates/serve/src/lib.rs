//! # dlbench-serve
//!
//! Online inference serving for the DLBench suite — the deployment-side
//! complement to the paper's offline training benchmarks. The pipeline:
//!
//! ```text
//! HTTP request ──▶ ModelRegistry ──▶ MicroBatcher (bounded queue)
//!                                        │  max-batch / max-wait flush
//!                                        ▼
//!                                  worker thread: one batched forward
//!                                        │
//!      /metrics ◀── ServeMetrics ◀───────┴──▶ per-request reply
//! ```
//!
//! * [`model::ModelRegistry`] serves multiple named models, each rebuilt
//!   from its framework personality's architecture spec and optionally
//!   warm-loaded from a `dlbench-nn` checkpoint.
//! * [`batcher::MicroBatcher`] coalesces concurrent requests into one
//!   batched forward pass under a max-batch-size / max-wait deadline.
//!   Batching is bit-transparent: batched predictions are identical to
//!   single-sample forwards (guarded by the suite's determinism tests).
//! * [`http`] is a dependency-free HTTP/1.1 server over
//!   `std::net::TcpListener` with `/predict/<model>`, `/healthz` and
//!   `/metrics` endpoints. Overload sheds with `503` + `Retry-After`
//!   (never a crash); shutdown drains in-flight requests.
//! * [`loadgen`] drives a server closed-loop or open-loop (fixed arrival
//!   rate) and reports client-side p50/p95/p99.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod model;

pub use batcher::{BatchConfig, MicroBatcher, Prediction};
pub use http::{serve, RunningServer};
pub use loadgen::{LoadConfig, LoadMode, LoadReport};
pub use metrics::ServeMetrics;
pub use model::{ModelDtype, ModelRegistry, ModelSpec, ServedModel, ServingModel};

/// Errors surfaced by the serving layer. Each maps onto a well-defined
/// HTTP status so overload and misuse degrade gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is full — load was shed (HTTP 503 with
    /// `Retry-After`).
    QueueFull,
    /// The server is draining and no longer accepts work (HTTP 503).
    Draining,
    /// Request payload malformed (HTTP 400).
    BadInput(String),
    /// No model registered under the requested name (HTTP 404).
    UnknownModel(String),
    /// A checkpoint failed to load at registration time.
    Checkpoint(String),
    /// Transport-level failure (client side or socket I/O).
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "request queue full (load shed)"),
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::BadInput(m) => write!(f, "bad input: {m}"),
            ServeError::UnknownModel(m) => write!(f, "unknown model: {m}"),
            ServeError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            ServeError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
