//! Report assembly for distributed training runs.
//!
//! Maps a [`DistOutcome`] into the same [`ExperimentReport`] shape the
//! single-node experiments use, so `dlbench dist-train` output renders,
//! serializes and round-trips through `dlbench-json` exactly like every
//! other report — with the distributed dimensions (world size,
//! strategy, bytes on the wire, fault events) carried as facts, notes
//! and a compute/comm/wait series per device.

use crate::metrics::CellMetrics;
use crate::report::{ExperimentReport, Series};
use dlbench_dist::DistOutcome;

/// Builds the report for one distributed run.
pub fn dist_report(out: &DistOutcome) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "dist_train",
        format!(
            "Distributed data-parallel training — {} x{} ({})",
            out.host.name(),
            out.world_size,
            out.strategy.name()
        ),
    );

    for sim in &out.sims {
        report.rows.push(CellMetrics {
            label: format!("{} x{} {}", out.host.name(), out.world_size, out.strategy.name()),
            device: sim.device.clone(),
            train_time_s: sim.train_seconds,
            test_time_s: sim.test_seconds,
            accuracy_pct: out.accuracy * 100.0,
            converged: out.converged,
            wall_train_s: out.wall_seconds,
        });
        // Compute/comm/wait breakdown as a three-point series per
        // device (x: 0=compute, 1=comm, 2=wait), the shape the render
        // layer already knows how to plot.
        report.series.push(Series {
            name: format!("{} breakdown (compute/comm/wait s)", sim.device),
            points: vec![
                (0.0, sim.compute_seconds),
                (1.0, sim.comm_seconds),
                (2.0, sim.straggler_wait_seconds),
            ],
        });
    }
    report.series.push(Series {
        name: "training loss".to_string(),
        points: out.loss_curve.iter().map(|&(it, l)| (it as f64, f64::from(l))).collect(),
    });

    report.facts.push(("world size".to_string(), out.world_size.to_string()));
    report.facts.push(("strategy".to_string(), out.strategy.name().to_string()));
    report.facts.push(("live workers".to_string(), out.live_workers.to_string()));
    report.facts.push(("bytes per step".to_string(), out.comm.bytes_per_step.to_string()));
    report.facts.push(("total comm bytes".to_string(), out.comm.total_bytes.to_string()));
    report.facts.push((
        "executed iterations".to_string(),
        format!("{} (paper budget {})", out.executed_iterations, out.paper_iterations),
    ));
    report.facts.push(("final loss".to_string(), format!("{:.4}", out.final_loss())));

    for event in &out.events {
        report.notes.push(event.clone());
    }
    if out.live_workers < out.world_size {
        report.notes.push(format!(
            "{} of {} workers survived; training completed on the remainder \
             with bit-identical results",
            out.live_workers, out.world_size
        ));
    }
    report.notes.push(
        "N-worker training is bit-identical to 1-worker: canonical shards, \
         fixed-order tree reduction"
            .to_string(),
    );
    report
}
