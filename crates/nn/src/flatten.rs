//! Reshape layer bridging convolutional and fully-connected stacks.

use crate::layer::Layer;
use crate::profile::LayerCost;
use dlbench_tensor::Tensor;

/// Flattens `[N, …]` to `[N, prod(…)]`, remembering the input shape for
/// the backward reshape.
#[derive(Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn summary(&self) -> String {
        "Flatten".to_string()
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(input.rank() >= 1, "Flatten expects a batched tensor");
        self.cached_shape = input.shape().to_vec();
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, rest]).expect("flatten reshape preserves element count")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(!self.cached_shape.is_empty(), "backward before forward");
        grad_out.reshape(&self.cached_shape).expect("unflatten reshape preserves element count")
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[1..].iter().product()]
    }

    fn cost(&self, _input_shape: &[usize]) -> LayerCost {
        // Pure metadata operation: free on device, no kernel launch.
        LayerCost::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::arange(24).reshape(&[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let gx = f.backward(&y);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gx.data(), x.data());
    }
}
