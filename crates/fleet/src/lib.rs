//! # dlbench-fleet
//!
//! A multi-replica serving fleet over `dlbench-serve`, closing the
//! ROADMAP's planet-scale serving loop: N hot-swappable
//! [`MicroBatcher`](dlbench_serve::MicroBatcher) replicas behind a
//! pluggable [`Router`], a queue-depth/p99-driven [`Autoscaler`], and
//! health-gated promotion of rolling checkpoints from a *live*
//! `dist-train` run into serving.
//!
//! ```text
//!            ┌──────────── Fleet ────────────┐
//! request ──▶ Router ──▶ Replica 0..N  ──▶ prediction (class, logits,
//!            │  rr │ least-queue │ batch-aware      version, replica)
//!            └──────────────▲───────────────┘
//!         Autoscaler ───────┤ scale_to / warm-up / drain
//!         Promoter ─────────┘ health-gated hot swap, zero drops
//!                ▲
//!         dist-train (live) ──▶ epoch-boundary checkpoints
//! ```
//!
//! Two execution planes share the control logic:
//!
//! * the **real fleet** ([`Fleet`]) runs actual batched forwards and is
//!   what the promotion/bit-transparency tests exercise;
//! * the **simulated fleet** ([`sim::simulate_fleet`]) swaps each
//!   forward for its `dlbench-simtime` cost, so heavy-tailed open-loop
//!   load can sweep arrival rates to millions-of-users scale in bounded
//!   wall-clock (`BENCH_fleet.json`).
//!
//! Determinism contract: predictions are bitwise identical across
//! routing policy, replica count and scaling activity for a fixed model
//! version (batching is bit-transparent and every replica is rebuilt
//! from the same checkpoint bytes); simulated sweeps are byte-identical
//! across runs (sim-time only, seeded arrivals, no wall-clock in the
//! report).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod fleet;
pub mod load;
pub mod promote;
pub mod replica;
pub mod router;
pub mod sim;

pub use autoscale::{AutoscaleConfig, Autoscaler, FleetSignal, ScaleDecision};
pub use fleet::{Fleet, FleetConfig, FleetPrediction};
pub use load::{drive, drive_until, FleetLoadReport};
pub use promote::{
    dist_training_stream, Candidate, HealthGate, HealthGateConfig, Promoter, PromotionOutcome,
};
pub use replica::Replica;
pub use router::{ReplicaView, Router, RoutingPolicy};
pub use sim::{fleet_sweep_doc, simulate_fleet, SimFleetConfig, SimFleetReport};
