//! End-to-end tests for the declarative experiment orchestrator:
//! spec → plan determinism against a committed golden, cache-driven
//! resume, corrupt-entry tolerance, and bit-for-bit equivalence with
//! the direct `BenchmarkRunner` path.

use dlbench_core::spec::{self, ExperimentSpec, RunOptions};
use dlbench_core::BenchmarkRunner;
use dlbench_integration_tests::TEST_SEED;
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// A per-test scratch cache directory, removed on drop so reruns
/// always start cold.
struct ScratchCache(PathBuf);

impl ScratchCache {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dlbench-spec-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchCache(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A tiny 2×2 grid (framework × device on MNIST) that needs exactly
/// two trainings.
fn small_grid() -> ExperimentSpec {
    let text = format!(
        r#"{{
            "name": "it-grid",
            "defaults": {{"scale": "tiny", "seed": {TEST_SEED}, "dataset": "mnist"}},
            "grids": [{{
                "kind": "train",
                "axes": {{"framework": ["tf", "caffe"], "device": ["cpu", "gpu"]}}
            }}]
        }}"#
    );
    ExperimentSpec::parse(&text).expect("inline spec parses")
}

#[test]
fn shipped_spec_expands_to_golden_plan() {
    let text = std::fs::read_to_string(repo_path("../examples/specs/paper_tables.json"))
        .expect("shipped spec readable");
    let spec = ExperimentSpec::parse(&text).expect("shipped spec parses");
    let plan = spec.expand().expect("shipped spec expands");
    assert!(
        plan.cells.len() >= 12,
        "paper tables spec must cover the full cross: {}",
        plan.cells.len()
    );
    let rendered = plan.to_json().pretty() + "\n";
    // Expansion is a pure function of the spec text.
    let again = ExperimentSpec::parse(&text).unwrap().expand().unwrap();
    assert_eq!(rendered, again.to_json().pretty() + "\n");
    // And matches the committed golden byte-for-byte.
    let golden =
        std::fs::read_to_string(repo_path("goldens/spec_plan.json")).expect("golden plan readable");
    assert_eq!(rendered, golden, "plan drifted from tests/goldens/spec_plan.json");
}

#[test]
fn resume_retrains_only_missing_cells() {
    let cache = ScratchCache::new("resume");
    let plan = small_grid().expand().unwrap();
    assert_eq!(plan.cells.len(), 4);
    let opts = RunOptions { cache_dir: cache.path().to_path_buf(), force: false };
    let first = spec::run_plan(&plan, &opts, None).unwrap();
    assert_eq!((first.executed, first.cache_hits), (4, 0));

    // Simulate a killed sweep by deleting one finished cell.
    let victim = cache.path().join(format!("{}.json", first.cells[2].hash));
    std::fs::remove_file(&victim).unwrap();
    let second = spec::run_plan(&plan, &opts, None).unwrap();
    assert_eq!((second.executed, second.cache_hits), (1, 3), "exactly the deleted cell re-runs");

    // The resumed run reproduces the original results bit-for-bit.
    assert_eq!(
        spec::document(&first).pretty(),
        spec::document(&second).pretty(),
        "resume changed results"
    );
}

#[test]
fn truncated_cache_entry_is_a_miss_not_an_error() {
    let cache = ScratchCache::new("truncated");
    let text = format!(
        r#"{{
            "name": "it-truncated",
            "defaults": {{"scale": "tiny", "seed": {TEST_SEED},
                         "framework": "caffe", "dataset": "mnist"}},
            "grids": [{{"kind": "train", "axes": {{"device": ["cpu", "gpu"]}}}}]
        }}"#
    );
    let plan = ExperimentSpec::parse(&text).unwrap().expand().unwrap();
    let opts = RunOptions { cache_dir: cache.path().to_path_buf(), force: false };
    let first = spec::run_plan(&plan, &opts, None).unwrap();
    assert_eq!(first.executed, 2);

    // A crash mid-write never leaves a half entry (temp + rename), but
    // disk corruption could; either way a mangled entry must re-run.
    let path = cache.path().join(format!("{}.json", first.cells[0].hash));
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 3]).unwrap();
    let second = spec::run_plan(&plan, &opts, None).unwrap();
    assert_eq!((second.executed, second.cache_hits), (1, 1));
    assert_eq!(spec::document(&first).pretty(), spec::document(&second).pretty());
}

#[test]
fn spec_cell_matches_direct_runner_bitwise() {
    let cache = ScratchCache::new("equivalence");
    let text = format!(
        r#"{{
            "name": "it-equivalence",
            "defaults": {{"scale": "tiny", "seed": {TEST_SEED},
                         "framework": "caffe", "dataset": "mnist"}},
            "grids": [{{"kind": "train", "axes": {{"device": ["gpu"]}}}}]
        }}"#
    );
    let plan = ExperimentSpec::parse(&text).unwrap().expand().unwrap();
    let opts = RunOptions { cache_dir: cache.path().to_path_buf(), force: false };
    let run = spec::run_plan(&plan, &opts, None).unwrap();
    let result = &run.cells[0].result;

    // The same cell through the `run`/`train` path: identical key,
    // device and seed must yield identical bits, or the orchestrator
    // is not measuring what the rest of the suite measures.
    let mut runner = BenchmarkRunner::new(dlbench_frameworks::Scale::Tiny, TEST_SEED);
    let key = BenchmarkRunner::own_default_key(
        dlbench_frameworks::FrameworkKind::Caffe,
        dlbench_data::DatasetKind::Mnist,
    );
    let direct = runner.metrics(key, &dlbench_simtime::devices::gtx_1080_ti(), "direct");
    let field = |k: &str| result.get(k).and_then(|v| v.as_f64()).unwrap();
    assert_eq!(field("train_time_s"), direct.train_time_s);
    assert_eq!(field("test_time_s"), direct.test_time_s);
    assert_eq!(field("accuracy_pct"), direct.accuracy_pct as f64);
    assert_eq!(result.get("converged"), Some(&dlbench_json::JsonValue::Bool(direct.converged)));
}

#[test]
fn forced_rerun_is_byte_identical() {
    let cache = ScratchCache::new("force");
    let text = format!(
        r#"{{
            "name": "it-force",
            "defaults": {{"scale": "tiny", "seed": {TEST_SEED},
                         "framework": "caffe", "dataset": "mnist"}},
            "grids": [{{"kind": "train", "axes": {{"device": ["cpu"]}}}}]
        }}"#
    );
    let plan = ExperimentSpec::parse(&text).unwrap().expand().unwrap();
    let cached = RunOptions { cache_dir: cache.path().to_path_buf(), force: false };
    let forced = RunOptions { cache_dir: cache.path().to_path_buf(), force: true };
    let first = spec::run_plan(&plan, &cached, None).unwrap();
    // `--force` re-executes everything; a deterministic engine must
    // still reproduce the document byte-for-byte.
    let second = spec::run_plan(&plan, &forced, None).unwrap();
    assert_eq!(second.executed, 1);
    assert_eq!(spec::document(&first).pretty(), spec::document(&second).pretty());
}
