//! Weight initialization schemes.
//!
//! Each reference framework ships a different default initializer, and
//! the paper's accuracy differences partly flow from these choices, so
//! they are modelled explicitly:
//!
//! * TensorFlow's MNIST/CIFAR tutorials use truncated normal draws with
//!   a small constant bias ([`Initializer::TruncatedNormal`]).
//! * Caffe's LeNet/CIFAR prototxts use Xavier/MSRA-style fan-scaled
//!   uniform draws ([`Initializer::Xavier`]).
//! * Torch7's `nn` modules default to LeCun-style `±1/sqrt(fan_in)`
//!   uniform draws ([`Initializer::LecunUniform`]).

use dlbench_tensor::{SeededRng, Tensor};

/// A weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// Normal draws truncated to two standard deviations, with the given
    /// standard deviation and constant bias value (TensorFlow tutorial
    /// style: `std = 0.1`, `bias = 0.1`).
    TruncatedNormal {
        /// Standard deviation of the weight draws.
        std: f32,
        /// Constant initial bias.
        bias: f32,
    },
    /// Xavier/Glorot uniform: `U(±sqrt(6 / (fan_in + fan_out)))`, zero
    /// bias (Caffe style).
    Xavier,
    /// LeCun uniform: `U(±1/sqrt(fan_in))` for weights *and* biases
    /// (Torch7 style).
    LecunUniform,
    /// Plain Gaussian with the given standard deviation and zero bias.
    Gaussian {
        /// Standard deviation of the weight draws.
        std: f32,
    },
}

impl Initializer {
    /// Samples a weight tensor of the given shape. `fan_in`/`fan_out`
    /// are the effective fan sizes (for conv layers these include the
    /// kernel area).
    pub fn sample_weights(
        &self,
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut SeededRng,
    ) -> Tensor {
        match *self {
            Initializer::TruncatedNormal { std, .. } => {
                let n: usize = dims.iter().product();
                let mut data = Vec::with_capacity(n);
                while data.len() < n {
                    let v = rng.normal(0.0, std);
                    if v.abs() <= 2.0 * std {
                        data.push(v);
                    }
                }
                Tensor::from_vec(dims, data).expect("sampled data matches shape")
            }
            Initializer::Xavier => {
                let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::rand_uniform(dims, -bound, bound, rng)
            }
            Initializer::LecunUniform => {
                let bound = 1.0 / (fan_in as f32).sqrt();
                Tensor::rand_uniform(dims, -bound, bound, rng)
            }
            Initializer::Gaussian { std } => Tensor::randn(dims, 0.0, std, rng),
        }
    }

    /// Samples a bias tensor of the given shape.
    pub fn sample_bias(&self, dims: &[usize], fan_in: usize, rng: &mut SeededRng) -> Tensor {
        match *self {
            Initializer::TruncatedNormal { bias, .. } => Tensor::full(dims, bias),
            Initializer::Xavier | Initializer::Gaussian { .. } => Tensor::zeros(dims),
            Initializer::LecunUniform => {
                let bound = 1.0 / (fan_in as f32).sqrt();
                Tensor::rand_uniform(dims, -bound, bound, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_normal_respects_bound() {
        let mut rng = SeededRng::new(1);
        let init = Initializer::TruncatedNormal { std: 0.1, bias: 0.1 };
        let w = init.sample_weights(&[64, 32], 32, 64, &mut rng);
        assert!(w.data().iter().all(|v| v.abs() <= 0.2 + 1e-6));
        let b = init.sample_bias(&[64], 32, &mut rng);
        assert!(b.data().iter().all(|&v| v == 0.1));
    }

    #[test]
    fn xavier_bound_scales_with_fans() {
        let mut rng = SeededRng::new(2);
        let w = Initializer::Xavier.sample_weights(&[100, 200], 200, 100, &mut rng);
        let bound = (6.0f32 / 300.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        assert!(w.max() > 0.5 * bound, "draws should fill the range");
        let b = Initializer::Xavier.sample_bias(&[100], 200, &mut rng);
        assert!(b.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lecun_uniform_bounds() {
        let mut rng = SeededRng::new(3);
        let w = Initializer::LecunUniform.sample_weights(&[10, 25], 25, 10, &mut rng);
        assert!(w.data().iter().all(|v| v.abs() <= 0.2));
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = Initializer::Xavier.sample_weights(&[5, 5], 5, 5, &mut SeededRng::new(9));
        let w2 = Initializer::Xavier.sample_weights(&[5, 5], 5, 5, &mut SeededRng::new(9));
        assert_eq!(w1, w2);
    }
}
