//! Quantization benchmark: post-training int8 versus fp32 per
//! personality × dataset, measured on the paper's three axes — speed
//! (modeled testing-time ratio), accuracy (top-1 drop) and adversarial
//! robustness (FGSM/PGD/JSMA success-rate shift under transfer).
//!
//! ```sh
//! cargo bench --bench quant              # full attack sample counts
//! cargo bench --bench quant -- --quick   # CI smoke: reduced samples
//! ```
//!
//! Results land in `target/dlbench-reports/BENCH_quant.json`: one row
//! per *(framework, dataset)* cell at scale Tiny. Each row carries the
//! fp32 and int8 top-1 accuracies, the modeled CPU/GPU testing-time
//! speedups, the per-layer calibration record, and for each attack the
//! fp32 success rate, the transfer success rate against the int8 model
//! and their delta. The transfer protocol follows the black-box
//! convention: examples are crafted against the fp32 network only, over
//! samples both models classify correctly, then replayed unchanged
//! against the quantized network.
//!
//! Everything here is seeded and wall-clock-free inside the JSON (wall
//! time goes to stdout only), so the document is byte-identical across
//! runs — check.sh runs it twice and `cmp`s the output.

use dlbench_adversarial::{fgsm, jsma, pgd, FgsmConfig, JsmaConfig, PgdConfig};
use dlbench_bench::BENCH_SEED;
use dlbench_data::{Dataset, DatasetKind, Preprocessing};
use dlbench_frameworks::{trainer, DefaultSetting, FrameworkKind, Scale};
use dlbench_json::JsonValue;
use dlbench_nn::Network;
use dlbench_quant::{cost_split, quantize_checkpoint, QuantConfig, QuantizedNetwork};
use dlbench_simtime::{devices, CostModel};
use dlbench_tensor::{SeededRng, Tensor};
use dlbench_trace::Stopwatch;

/// The shared `target/dlbench-reports` directory, recovered from the
/// executable path exactly like the criterion facade does — cargo runs
/// bench binaries with the *package* root as cwd, so a relative
/// `target/` would land inside `crates/bench/`.
fn reports_dir() -> std::path::PathBuf {
    let from_exe = std::env::current_exe().ok().and_then(|exe| {
        let deps = exe.parent()?;
        if deps.file_name()? != "deps" {
            return None;
        }
        Some(deps.parent()?.parent()?.join("dlbench-reports"))
    });
    from_exe.unwrap_or_else(|| std::path::Path::new("target").join("dlbench-reports"))
}

/// Batched top-1 accuracy of the quantized network over `test` — the
/// int8 mirror of `trainer::evaluate` (same 100-sample batches, same
/// preprocessing pipeline).
fn evaluate_quantized(
    q: &mut QuantizedNetwork,
    test: &Dataset,
    preprocessing: Preprocessing,
    channel_means: &[f32],
) -> f32 {
    let n = test.len();
    let mut correct = 0usize;
    let mut start = 0;
    while start < n {
        let end = (start + 100).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let (images, labels) = test.gather(&idx);
        let x = preprocessing.apply(&images, channel_means);
        let preds = q.forward(&x, false).argmax_rows();
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        start = end;
    }
    correct as f32 / n.max(1) as f32
}

/// Indices of test samples both models classify correctly on the raw
/// (attack-domain) images — the eligible pool for transfer crafting.
fn both_correct(net: &mut Network, q: &mut QuantizedNetwork, test: &Dataset) -> Vec<usize> {
    let idx: Vec<usize> = (0..test.len()).collect();
    let (images, labels) = test.gather(&idx);
    let fp32_preds = net.forward(&images, false).argmax_rows();
    let int8_preds = q.forward(&images, false).argmax_rows();
    idx.into_iter().filter(|&i| fp32_preds[i] == labels[i] && int8_preds[i] == labels[i]).collect()
}

/// fp32-crafted / int8-transferred success rates for one attack, as a
/// `(fp32_rate, int8_rate, samples)` JSON object.
fn attack_row(fp32_hits: usize, int8_hits: usize, samples: usize) -> JsonValue {
    let denom = samples.max(1) as f32;
    let fp32_rate = fp32_hits as f32 / denom;
    let int8_rate = int8_hits as f32 / denom;
    JsonValue::Object(vec![
        ("samples".into(), samples.into()),
        ("fp32_success".into(), fp32_rate.into()),
        ("int8_success".into(), int8_rate.into()),
        ("delta".into(), (int8_rate - fp32_rate).into()),
    ])
}

struct CellRow {
    host: FrameworkKind,
    dataset: DatasetKind,
    json: JsonValue,
    fp32_acc: f32,
    int8_acc: f32,
    speedup_cpu: f64,
}

#[allow(clippy::too_many_lines)]
fn run_cell(
    host: FrameworkKind,
    dataset: DatasetKind,
    attack_samples: usize,
    jsma_samples: usize,
) -> CellRow {
    let scale = Scale::Tiny;
    let seed = BENCH_SEED;
    let setting = DefaultSetting::new(host, dataset);
    let out = trainer::run_training(host, setting, dataset, scale, seed);
    let mut net = out.model;
    let fp32_acc = out.accuracy;

    // Quantize a serialized copy so the fp32 network survives for
    // crafting; this is also exactly the byte path `serve --quantize
    // int8` takes, so the bench measures what deployment ships.
    let mut ckpt = Vec::new();
    dlbench_nn::save_parameters(&mut net, &mut ckpt).expect("in-memory checkpoint");
    let cfg = QuantConfig::default();
    let mut qnet =
        quantize_checkpoint(host, &setting, dataset, scale, seed, &mut ckpt.as_slice(), &cfg)
            .expect("quantize the fresh checkpoint");

    let (train, test) = trainer::generate_data(dataset, scale, seed);
    let preprocessing = trainer::effective_preprocessing(host, &setting, dataset);
    let channel_means = if preprocessing == Preprocessing::MeanSubtract {
        Preprocessing::channel_means(&train)
    } else {
        Vec::new()
    };
    let int8_acc = evaluate_quantized(&mut qnet, &test, preprocessing, &channel_means);

    // Modeled testing-time ratio: int8 GEMM throughput plus 1-byte
    // activation traffic for quantized layers, fp32 charges elsewhere.
    let size = scale.image_size(dataset);
    let batch = 100usize;
    let shape = [batch, dataset.channels(), size, size];
    let (qcost, fcost) = cost_split(&net, &shape);
    let total = qcost.merge(fcost);
    let mut speedups = Vec::new();
    for device in [devices::xeon_e5_1620(), devices::gtx_1080_ti()] {
        let model = CostModel::new(device, host.execution_profile());
        let fp32_s = model.inference_seconds_batched(&total, batch);
        let int8_s = model.inference_seconds_batched_int8(&qcost, &fcost, batch);
        speedups.push(fp32_s / int8_s);
    }
    let (speedup_cpu, speedup_gpu) = (speedups[0], speedups[1]);

    // Transfer attacks: craft on fp32 over the both-correct pool, then
    // replay the crafted examples unchanged against the int8 network.
    let pool = both_correct(&mut net, &mut qnet, &test);
    let epsilon = 0.15f32;
    let fgsm_cfg = FgsmConfig { epsilon, clamp: Some((0.0, 1.0)) };
    let pgd_cfg = PgdConfig::standard(epsilon);
    let jsma_cfg = JsmaConfig::default();
    let mut rng = SeededRng::new(seed).fork(0x9_0A17);

    let n_grad = pool.len().min(attack_samples);
    let (mut fgsm_fp32, mut fgsm_int8) = (0usize, 0usize);
    let (mut pgd_fp32, mut pgd_int8) = (0usize, 0usize);
    for &i in &pool[..n_grad] {
        let (x, labels) = test.gather(&[i]);
        let label = labels[0];
        let transferred = |q: &mut QuantizedNetwork, adv: &Tensor| {
            q.forward(adv, false).argmax_rows()[0] != label
        };
        let r = fgsm(&mut net, &x, label, &fgsm_cfg);
        fgsm_fp32 += usize::from(r.success);
        fgsm_int8 += usize::from(transferred(&mut qnet, &r.adversarial));
        let r = pgd(&mut net, &x, label, &pgd_cfg, &mut rng);
        pgd_fp32 += usize::from(r.success);
        pgd_int8 += usize::from(transferred(&mut qnet, &r.adversarial));
    }

    // JSMA is targeted and costs a saliency sweep per pixel flipped, so
    // its sample budget stays small; target class is `label + 1 mod 10`.
    let n_jsma = pool.len().min(jsma_samples);
    let (mut jsma_fp32, mut jsma_int8) = (0usize, 0usize);
    for &i in &pool[..n_jsma] {
        let (x, labels) = test.gather(&[i]);
        let target = (labels[0] + 1) % 10;
        let outcome = jsma(&mut net, &x, target, &jsma_cfg);
        jsma_fp32 += usize::from(outcome.success);
        jsma_int8 +=
            usize::from(qnet.forward(&outcome.adversarial, false).argmax_rows()[0] == target);
    }

    let json = JsonValue::Object(vec![
        ("framework".into(), host.name().into()),
        ("dataset".into(), dataset.name().into()),
        ("fp32_accuracy".into(), fp32_acc.into()),
        ("int8_accuracy".into(), int8_acc.into()),
        ("accuracy_drop_pp".into(), ((fp32_acc - int8_acc) * 100.0).into()),
        ("speedup_cpu".into(), speedup_cpu.into()),
        ("speedup_gpu".into(), speedup_gpu.into()),
        ("layers".into(), qnet.len().into()),
        ("layers_quantized".into(), qnet.num_quantized().into()),
        ("calibration".into(), qnet.calibration_json()),
        (
            "attacks".into(),
            JsonValue::Object(vec![
                ("epsilon".into(), epsilon.into()),
                ("fgsm".into(), attack_row(fgsm_fp32, fgsm_int8, n_grad)),
                ("pgd".into(), attack_row(pgd_fp32, pgd_int8, n_grad)),
                ("jsma".into(), attack_row(jsma_fp32, jsma_int8, n_jsma)),
            ]),
        ),
    ]);
    CellRow { host, dataset, json, fp32_acc, int8_acc, speedup_cpu }
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("quant: bench");
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let (attack_samples, jsma_samples) = if quick { (8, 2) } else { (32, 4) };

    println!(
        "DLBench quantization sweep — scale Tiny, seed {BENCH_SEED:#x}, \
         {attack_samples} FGSM/PGD and {jsma_samples} JSMA transfer samples per cell"
    );
    let started = Stopwatch::start();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<9} {:>9} {:>9} {:>8} {:>12}",
        "framework", "dataset", "fp32_acc", "int8_acc", "drop_pp", "cpu_speedup"
    );
    for host in FrameworkKind::ALL {
        for dataset in [DatasetKind::Mnist, DatasetKind::Cifar10] {
            let row = run_cell(host, dataset, attack_samples, jsma_samples);
            println!(
                "{:<12} {:<9} {:>8.2}% {:>8.2}% {:>+7.2} {:>11.2}x",
                row.host.name(),
                row.dataset.name(),
                row.fp32_acc * 100.0,
                row.int8_acc * 100.0,
                (row.fp32_acc - row.int8_acc) * 100.0,
                row.speedup_cpu
            );
            rows.push(row.json);
        }
    }

    let doc = JsonValue::Object(vec![
        ("name".into(), "quant".into()),
        ("scale".into(), "tiny".into()),
        ("seed".into(), (BENCH_SEED as usize).into()),
        ("attack_samples".into(), attack_samples.into()),
        ("jsma_samples".into(), jsma_samples.into()),
        ("rows".into(), JsonValue::Array(rows)),
    ]);
    let out_dir = reports_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("BENCH_quant.json");
    match std::fs::write(&path, doc.pretty() + "\n") {
        Ok(()) => {
            println!("done in {:.1}s; rows written to {}", started.elapsed_s(), path.display())
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
