//! Property-based tests for the configuration database and trainer
//! helpers.

use dlbench_data::{DatasetKind, Preprocessing};
use dlbench_frameworks::{trainer, DefaultSetting, FrameworkKind};
use dlbench_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

fn any_framework() -> impl Strategy<Value = FrameworkKind> {
    prop::sample::select(vec![
        FrameworkKind::TensorFlow,
        FrameworkKind::Caffe,
        FrameworkKind::Torch,
    ])
}

fn any_dataset() -> impl Strategy<Value = DatasetKind> {
    prop::sample::select(vec![DatasetKind::Mnist, DatasetKind::Cifar10])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_arch_builds_at_any_reasonable_size(
        fw in any_framework(),
        ds in any_dataset(),
        size in 10usize..33,
        width in 0.25f32..1.0,
        seed in 0u64..200,
    ) {
        let setting = DefaultSetting::new(fw, ds);
        let spec = trainer::effective_arch(fw, &setting);
        let c = ds.channels();
        let mut rng = SeededRng::new(seed);
        let mut net = spec.build((c, size, size), width, fw.initializer(), &mut rng);
        let x = Tensor::randn(&[2, c, size, size], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, true);
        prop_assert_eq!(y.shape(), &[2, 10]);
        prop_assert!(!y.has_non_finite());
    }

    #[test]
    fn paper_cost_monotone_in_batch_and_size(
        fw in any_framework(),
        ds in any_dataset(),
        batch in 1usize..64,
    ) {
        let spec = DefaultSetting::new(fw, ds).arch();
        let native = ds.native_size();
        let input = (ds.channels(), native, native);
        let c1 = spec.paper_cost(input, batch);
        let c2 = spec.paper_cost(input, batch + 1);
        prop_assert!(c2.fwd_flops > c1.fwd_flops);
        prop_assert!(c2.bwd_flops > c1.bwd_flops);
        prop_assert_eq!(c1.params, c2.params, "params are batch-independent");
    }

    #[test]
    fn effective_preprocessing_only_breaks_caffe_cross_dataset(
        host in any_framework(),
        owner in any_framework(),
        tuned in any_dataset(),
        ds in any_dataset(),
    ) {
        let setting = DefaultSetting::new(owner, tuned);
        let effective = trainer::effective_preprocessing(host, &setting, ds);
        let declared = setting.training().preprocessing;
        let is_caffe_transplant = host == FrameworkKind::Caffe
            && owner == FrameworkKind::Caffe
            && tuned != ds
            && declared == Preprocessing::Raw01;
        if is_caffe_transplant {
            prop_assert_eq!(effective, Preprocessing::RawBytes);
        } else {
            prop_assert_eq!(effective, declared);
        }
    }

    #[test]
    fn dropout_travels_with_tensorflow_host(
        owner in any_framework(),
        ds in any_dataset(),
    ) {
        use dlbench_frameworks::LayerSpecEntry;
        let setting = DefaultSetting::new(owner, ds);
        let tf_arch = trainer::effective_arch(FrameworkKind::TensorFlow, &setting);
        prop_assert!(
            tf_arch.entries.iter().any(|e| matches!(e, LayerSpecEntry::Dropout { .. })),
            "TF host must insert dropout"
        );
        for host in [FrameworkKind::Caffe, FrameworkKind::Torch] {
            let arch = trainer::effective_arch(host, &setting);
            prop_assert!(
                !arch.entries.iter().any(|e| matches!(e, LayerSpecEntry::Dropout { .. })),
                "{host} must not use dropout"
            );
        }
    }

    #[test]
    fn generated_data_is_shared_across_settings(
        ds in any_dataset(),
        seed in 0u64..100,
    ) {
        use dlbench_frameworks::Scale;
        let (a, _) = trainer::generate_data(ds, Scale::Tiny, seed);
        let (b, _) = trainer::generate_data(ds, Scale::Tiny, seed);
        prop_assert_eq!(a.images.data(), b.images.data());
        prop_assert_eq!(a.labels, b.labels);
    }
}
