//! Mini-batch iteration with per-epoch shuffling.

use crate::dataset::Dataset;
use dlbench_tensor::{SeededRng, Tensor};

/// Iterates a dataset in shuffled mini-batches, reshuffling at each
/// epoch boundary, indefinitely (the trainer decides when to stop based
/// on its iteration budget, mirroring Caffe's `max_iter` / TensorFlow's
/// `max_steps` semantics).
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    batch_size: usize,
    order: Vec<usize>,
    cursor: usize,
    epoch: usize,
    rng: SeededRng,
}

impl<'a> BatchIter<'a> {
    /// Creates a batch iterator. The iteration order is deterministic
    /// given `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero or the dataset is empty.
    pub fn new(dataset: &'a Dataset, batch_size: usize, rng: SeededRng) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!dataset.is_empty(), "cannot iterate an empty dataset");
        let mut it = Self {
            dataset,
            batch_size,
            order: (0..dataset.len()).collect(),
            cursor: 0,
            epoch: 0,
            rng,
        };
        it.rng.shuffle(&mut it.order);
        it
    }

    /// The number of completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Produces the next mini-batch (images, labels). The final batch of
    /// an epoch may be short; the next call reshuffles and starts the
    /// next epoch.
    pub fn next_batch(&mut self) -> (Tensor, Vec<usize>) {
        let (start, end) = self.advance();
        self.dataset.gather(&self.order[start..end])
    }

    /// Produces the next mini-batch as dataset *indices* instead of
    /// gathered tensors. Same cursor as [`BatchIter::next_batch`]:
    /// interleaving the two walks one shared schedule. The distributed
    /// driver uses this to shard a batch across workers without
    /// materializing it centrally.
    pub fn next_indices(&mut self) -> &[usize] {
        let (start, end) = self.advance();
        &self.order[start..end]
    }

    fn advance(&mut self) -> (usize, usize) {
        if self.cursor >= self.order.len() {
            self.epoch += 1;
            self.cursor = 0;
            self.rng.shuffle(&mut self.order);
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let start = self.cursor;
        self.cursor = end;
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthMnist;

    #[test]
    fn covers_every_sample_each_epoch() {
        let d = SynthMnist::generate(25, 12, 1);
        let mut it = BatchIter::new(&d, 10, SeededRng::new(5));
        let mut seen = Vec::new();
        // One epoch = 3 batches (10, 10, 5).
        for _ in 0..3 {
            let (imgs, labels) = it.next_batch();
            assert_eq!(imgs.shape()[0], labels.len());
            seen.extend(labels);
        }
        assert_eq!(seen.len(), 25);
        assert_eq!(it.epoch(), 0);
        // Triggering the 4th batch rolls the epoch.
        it.next_batch();
        assert_eq!(it.epoch(), 1);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let d = SynthMnist::generate(30, 12, 2);
        let mut a = BatchIter::new(&d, 8, SeededRng::new(7));
        let mut b = BatchIter::new(&d, 8, SeededRng::new(7));
        for _ in 0..5 {
            let (ia, la) = a.next_batch();
            let (ib, lb) = b.next_batch();
            assert_eq!(ia, ib);
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn next_indices_matches_next_batch_schedule() {
        let d = SynthMnist::generate(23, 12, 4);
        let mut by_tensor = BatchIter::new(&d, 7, SeededRng::new(11));
        let mut by_index = BatchIter::new(&d, 7, SeededRng::new(11));
        for _ in 0..8 {
            let idx = by_index.next_indices().to_vec();
            let (imgs, labels) = by_tensor.next_batch();
            let (gi, gl) = d.gather(&idx);
            assert_eq!(imgs, gi);
            assert_eq!(labels, gl);
        }
        assert_eq!(by_tensor.epoch(), by_index.epoch());
    }

    #[test]
    fn epochs_reshuffle() {
        let d = SynthMnist::generate(20, 12, 3);
        let mut it = BatchIter::new(&d, 20, SeededRng::new(9));
        let (_, first) = it.next_batch();
        let (_, second) = it.next_batch();
        assert_ne!(first, second, "second epoch should be differently ordered");
    }
}
