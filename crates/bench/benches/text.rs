//! Text-workload benchmark: the sentence-CNN IMDB cells measured on
//! the paper's three axes — accuracy, (modeled) time per epoch, and
//! adversarial robustness — per personality, fp32 versus int8.
//!
//! ```sh
//! cargo bench --bench text              # full attack sample counts
//! cargo bench --bench text -- --quick   # CI smoke: reduced samples
//! ```
//!
//! Results land in `target/dlbench-reports/BENCH_text.json`: one row
//! per framework personality on synthetic IMDB at scale Tiny. Each row
//! carries the fp32 and int8 top-1 accuracies, the modeled CPU/GPU
//! training time per paper epoch and testing-time int8 speedup, and
//! the embedding-space FGSM/PGD success rates against the fp32 model
//! plus their transfer rates against the int8 model. Token ids are
//! discrete, so attacks are crafted in the continuous embedding space
//! (split after the embedding layer) and transferred by replaying the
//! perturbed embedding through the quantized suffix, whose first
//! quantized layer re-quantizes it with frozen calibration parameters.
//!
//! Everything here is seeded and wall-clock-free inside the JSON (wall
//! time goes to stdout only), so the document is byte-identical across
//! runs — check.sh runs it twice and `cmp`s the output.

use dlbench_adversarial::{fgsm_embedding, pgd_embedding, EmbedAttackConfig, PgdConfig};
use dlbench_bench::BENCH_SEED;
use dlbench_data::{Dataset, DatasetKind};
use dlbench_frameworks::{trainer, training_defaults, DefaultSetting, FrameworkKind, Scale};
use dlbench_json::JsonValue;
use dlbench_quant::{cost_split, quantize_checkpoint, QuantConfig, QuantizedNetwork};
use dlbench_simtime::{devices, CostModel};
use dlbench_tensor::{SeededRng, Tensor};
use dlbench_trace::Stopwatch;

/// Network split point for embedding-space attacks: every text
/// personality puts its embedding layer first.
const EMBED_SPLIT: usize = 1;

/// The shared `target/dlbench-reports` directory, recovered from the
/// executable path exactly like the criterion facade does — cargo runs
/// bench binaries with the *package* root as cwd, so a relative
/// `target/` would land inside `crates/bench/`.
fn reports_dir() -> std::path::PathBuf {
    let from_exe = std::env::current_exe().ok().and_then(|exe| {
        let deps = exe.parent()?;
        if deps.file_name()? != "deps" {
            return None;
        }
        Some(deps.parent()?.parent()?.join("dlbench-reports"))
    });
    from_exe.unwrap_or_else(|| std::path::Path::new("target").join("dlbench-reports"))
}

/// Batched top-1 accuracy of the quantized network over `test` — the
/// int8 mirror of `trainer::evaluate`. Text pipelines are
/// preprocessing-free, so raw token batches go straight in.
fn evaluate_quantized(q: &mut QuantizedNetwork, test: &Dataset) -> f32 {
    let n = test.len();
    let mut correct = 0usize;
    let mut start = 0;
    while start < n {
        let end = (start + 100).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let (tokens, labels) = test.gather(&idx);
        let preds = q.forward(&tokens, false).argmax_rows();
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        start = end;
    }
    correct as f32 / n.max(1) as f32
}

/// Indices of test samples both models classify correctly — the
/// eligible pool for transfer crafting.
fn both_correct(
    net: &mut dlbench_nn::Network,
    q: &mut QuantizedNetwork,
    test: &Dataset,
) -> Vec<usize> {
    let idx: Vec<usize> = (0..test.len()).collect();
    let (tokens, labels) = test.gather(&idx);
    let fp32_preds = net.forward(&tokens, false).argmax_rows();
    let int8_preds = q.forward(&tokens, false).argmax_rows();
    idx.into_iter().filter(|&i| fp32_preds[i] == labels[i] && int8_preds[i] == labels[i]).collect()
}

/// fp32-crafted / int8-transferred success rates for one attack, as a
/// JSON object.
fn attack_row(fp32_hits: usize, int8_hits: usize, samples: usize) -> JsonValue {
    let denom = samples.max(1) as f32;
    let fp32_rate = fp32_hits as f32 / denom;
    let int8_rate = int8_hits as f32 / denom;
    JsonValue::Object(vec![
        ("samples".into(), samples.into()),
        ("fp32_success".into(), fp32_rate.into()),
        ("int8_success".into(), int8_rate.into()),
        ("delta".into(), (int8_rate - fp32_rate).into()),
    ])
}

struct CellRow {
    host: FrameworkKind,
    json: JsonValue,
    fp32_acc: f32,
    int8_acc: f32,
    epoch_cpu_s: f64,
}

fn run_cell(host: FrameworkKind, attack_samples: usize) -> CellRow {
    let dataset = DatasetKind::Imdb;
    let scale = Scale::Tiny;
    let seed = BENCH_SEED;
    let setting = DefaultSetting::new(host, dataset);
    let out = trainer::run_training(host, setting, dataset, scale, seed);
    let fp32_acc = out.accuracy;

    // Modeled time per paper epoch on the testbed devices — the text
    // mirror of the paper's Figure 1 training-time axis.
    let epochs =
        f64::from(training_defaults(setting.owner, dataset).paper_epochs(dataset)).max(1e-9);
    let cpu = out.simulated_times(&devices::xeon_e5_1620());
    let gpu = out.simulated_times(&devices::gtx_1080_ti());
    let mut net = out.model;
    let (epoch_cpu_s, epoch_gpu_s) = (cpu.train_seconds / epochs, gpu.train_seconds / epochs);

    // Quantize a serialized copy so the fp32 network survives for
    // crafting — the same byte path `serve --quantize int8` takes.
    let mut ckpt = Vec::new();
    dlbench_nn::save_parameters(&mut net, &mut ckpt).expect("in-memory checkpoint");
    let cfg = QuantConfig::default();
    let mut qnet =
        quantize_checkpoint(host, &setting, dataset, scale, seed, &mut ckpt.as_slice(), &cfg)
            .expect("quantize the fresh checkpoint");

    let (_, test) = trainer::generate_data(dataset, scale, seed);
    let int8_acc = evaluate_quantized(&mut qnet, &test);

    // Modeled int8 testing-time speedup at the serving batch size.
    let size = scale.image_size(dataset);
    let batch = 100usize;
    let (ic, ih, iw) = trainer::input_dims(dataset, size);
    let (qcost, fcost) = cost_split(&net, &[batch, ic, ih, iw]);
    let total = qcost.merge(fcost);
    let mut speedups = Vec::new();
    for device in [devices::xeon_e5_1620(), devices::gtx_1080_ti()] {
        let model = CostModel::new(device, host.execution_profile());
        let fp32_s = model.inference_seconds_batched(&total, batch);
        let int8_s = model.inference_seconds_batched_int8(&qcost, &fcost, batch);
        speedups.push(fp32_s / int8_s);
    }

    // Embedding-space transfer attacks over the both-correct pool:
    // craft against fp32, replay the perturbed embedding through the
    // int8 suffix (layers after the embedding).
    let pool = both_correct(&mut net, &mut qnet, &test);
    let epsilon = 0.02f32;
    let embed_cfg = EmbedAttackConfig::standard(epsilon);
    let pgd_cfg = PgdConfig { clamp: None, ..PgdConfig::standard(epsilon) };
    let mut rng = SeededRng::new(seed).fork(0x7E_817);

    let n_attack = pool.len().min(attack_samples);
    let (mut fgsm_fp32, mut fgsm_int8) = (0usize, 0usize);
    let (mut pgd_fp32, mut pgd_int8) = (0usize, 0usize);
    for &i in &pool[..n_attack] {
        let (x, labels) = test.gather(&[i]);
        let label = labels[0];
        let transferred = |q: &mut QuantizedNetwork, adv: &Tensor| {
            q.forward_from(EMBED_SPLIT, adv).argmax_rows()[0] != label
        };
        let r = fgsm_embedding(&mut net, &x, label, &embed_cfg);
        fgsm_fp32 += usize::from(r.success);
        fgsm_int8 += usize::from(transferred(&mut qnet, &r.adversarial));
        let r = pgd_embedding(&mut net, &x, label, EMBED_SPLIT, &pgd_cfg, &mut rng);
        pgd_fp32 += usize::from(r.success);
        pgd_int8 += usize::from(transferred(&mut qnet, &r.adversarial));
    }

    let json = JsonValue::Object(vec![
        ("framework".into(), host.name().into()),
        ("dataset".into(), dataset.name().into()),
        ("fp32_accuracy".into(), fp32_acc.into()),
        ("int8_accuracy".into(), int8_acc.into()),
        ("accuracy_drop_pp".into(), ((fp32_acc - int8_acc) * 100.0).into()),
        ("epoch_train_cpu_s".into(), epoch_cpu_s.into()),
        ("epoch_train_gpu_s".into(), epoch_gpu_s.into()),
        ("speedup_cpu".into(), speedups[0].into()),
        ("speedup_gpu".into(), speedups[1].into()),
        ("layers_quantized".into(), qnet.num_quantized().into()),
        ("calibration".into(), qnet.calibration_json()),
        (
            "attacks".into(),
            JsonValue::Object(vec![
                ("epsilon".into(), epsilon.into()),
                ("space".into(), "embedding".into()),
                ("fgsm".into(), attack_row(fgsm_fp32, fgsm_int8, n_attack)),
                ("pgd".into(), attack_row(pgd_fp32, pgd_int8, n_attack)),
            ]),
        ),
    ]);
    CellRow { host, json, fp32_acc, int8_acc, epoch_cpu_s }
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("text: bench");
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let attack_samples = if quick { 8 } else { 32 };

    println!(
        "DLBench text sweep — synthetic IMDB, scale Tiny, seed {BENCH_SEED:#x}, \
         {attack_samples} embedding-space FGSM/PGD transfer samples per cell"
    );
    let started = Stopwatch::start();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>9} {:>9} {:>8} {:>14}",
        "framework", "fp32_acc", "int8_acc", "drop_pp", "epoch_cpu_s"
    );
    for host in FrameworkKind::ALL {
        let row = run_cell(host, attack_samples);
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>+7.2} {:>14.2}",
            row.host.name(),
            row.fp32_acc * 100.0,
            row.int8_acc * 100.0,
            (row.fp32_acc - row.int8_acc) * 100.0,
            row.epoch_cpu_s,
        );
        rows.push(row.json);
    }

    let doc = JsonValue::Object(vec![
        ("name".into(), "text".into()),
        ("dataset".into(), "imdb".into()),
        ("scale".into(), "tiny".into()),
        ("seed".into(), (BENCH_SEED as usize).into()),
        ("attack_samples".into(), attack_samples.into()),
        ("rows".into(), JsonValue::Array(rows)),
    ]);
    let out_dir = reports_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("BENCH_text.json");
    match std::fs::write(&path, doc.pretty() + "\n") {
        Ok(()) => {
            println!("done in {:.1}s; rows written to {}", started.elapsed_s(), path.display())
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
