//! Distributed-training scaling benchmark: simulated train time,
//! compute/comm breakdown and speedup over world size, per framework
//! personality and collective strategy.
//!
//! ```sh
//! cargo bench --bench dist              # full sweep (1,2,4,8 workers)
//! cargo bench --bench dist -- --quick   # CI smoke: 1,2 workers, capped steps
//! ```
//!
//! Results land in `target/dlbench-reports/BENCH_dist.json`: one row
//! per *(framework, strategy, world size)* with the simulated
//! compute/comm/wait split on the CPU and GPU reference devices,
//! bytes on the wire per step, and speedup versus the smallest world
//! in the same group. The arithmetic is bit-identical at every world
//! size (see the determinism gate), so the curves isolate the cost
//! model — exactly the separation the paper's methodology asks for.

use dlbench_bench::BENCH_SEED;
use dlbench_dist::{scaling_sweep, Strategy};
use dlbench_frameworks::Scale;
use dlbench_trace::Stopwatch;

/// The shared `target/dlbench-reports` directory, recovered from the
/// executable path exactly like the criterion facade does — cargo runs
/// bench binaries with the *package* root as cwd, so a relative
/// `target/` would land inside `crates/bench/`.
fn reports_dir() -> std::path::PathBuf {
    let from_exe = std::env::current_exe().ok().and_then(|exe| {
        let deps = exe.parent()?;
        if deps.file_name()? != "deps" {
            return None;
        }
        Some(deps.parent()?.parent()?.join("dlbench-reports"))
    });
    from_exe.unwrap_or_else(|| std::path::Path::new("target").join("dlbench-reports"))
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("dist: bench");
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let (workers, max_steps): (&[usize], Option<usize>) =
        if quick { (&[1, 2], Some(30)) } else { (&[1, 2, 4, 8], None) };

    println!(
        "DLBench dist scaling sweep — scale Tiny, seed {BENCH_SEED:#x}, workers {workers:?}, \
         strategies [ps, ring]{}",
        if quick { ", quick (30 steps per run)" } else { "" }
    );
    let started = Stopwatch::start();
    let doc = scaling_sweep(Scale::Tiny, BENCH_SEED, workers, &Strategy::ALL, max_steps);

    if let Some(rows) = doc["rows"].as_array() {
        println!(
            "{:<12} {:>8} {:>7} {:>12} {:>10} {:>10} {:>10} {:>12} {:>8}",
            "framework",
            "strategy",
            "workers",
            "cpu_train_s",
            "compute_s",
            "comm_s",
            "wait_s",
            "bytes/step",
            "speedup"
        );
        for row in rows {
            if let Some(err) = row.get("error").and_then(|e| e.as_str()) {
                println!(
                    "{:<12} {:>8} {:>7}   error: {err}",
                    row["framework"].as_str().unwrap_or("?"),
                    row["strategy"].as_str().unwrap_or("?"),
                    row["workers"].as_f64().unwrap_or(-1.0) as usize,
                );
                continue;
            }
            let cpu = &row["cpu_sim"];
            println!(
                "{:<12} {:>8} {:>7} {:>12.2} {:>10.2} {:>10.2} {:>10.2} {:>12} {:>7.2}x",
                row["framework"].as_str().unwrap_or("?"),
                row["strategy"].as_str().unwrap_or("?"),
                row["workers"].as_f64().unwrap_or(-1.0) as usize,
                cpu["train_s"].as_f64().unwrap_or(0.0),
                cpu["compute_s"].as_f64().unwrap_or(0.0),
                cpu["comm_s"].as_f64().unwrap_or(0.0),
                cpu["wait_s"].as_f64().unwrap_or(0.0),
                row["bytes_per_step"].as_f64().unwrap_or(0.0) as u64,
                row["cpu_speedup_vs_baseline"].as_f64().unwrap_or(0.0),
            );
        }
    }

    let out_dir = reports_dir();
    let _ = std::fs::create_dir_all(&out_dir);
    let path = out_dir.join("BENCH_dist.json");
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => {
            println!("done in {:.1}s; rows written to {}", started.elapsed_s(), path.display())
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
