//! Communication-cost model for simulated distributed training.
//!
//! The reproduction environment has one machine and no interconnect, so
//! — exactly like device time in [`crate::CostModel`] — communication
//! time is charged analytically. `dlbench-dist` moves logical gradients
//! through in-process channels for bit-exact reproducibility; this
//! module prices what the same exchange would cost over a real link
//! under the classic cost shapes of the two collective strategies:
//!
//! * **Parameter server**: every worker uploads a full gradient and
//!   downloads the aggregate. The server's link serializes all `2·W`
//!   transfers, so time grows linearly with world size — the well-known
//!   PS bottleneck.
//! * **Ring all-reduce**: reduce-scatter plus all-gather over `1/W`
//!   chunks; each worker moves `2·(W−1)/W` gradient volumes and the
//!   links run in parallel, so time is nearly flat in world size at the
//!   price of `2·(W−1)` latency-bound phases.
//!
//! Note the deliberate separation (after Deep500's distinction between
//! benchmark *implementation* and benchmark *metric*): the in-process
//! transport ships per-shard gradients so the fixed-order reduction is
//! bitwise reproducible at any world size, while the cost model charges
//! the bandwidth-optimal schedule each strategy stands in for.

/// A point-to-point link personality: how a framework's distribution
/// stack uses the wire.
///
/// Bandwidth is the *effective* payload rate a gradient transfer
/// sustains (serialization, framing and copy overheads included), not
/// the NIC line rate; latency is the per-message software + wire
/// round-up. Presets assume the paper-era commodity cluster fabric —
/// 10 GbE (1.25 GB/s line rate) — scaled by each stack's overheads.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Display name of the transport stack.
    pub name: &'static str,
    /// Effective payload bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Per-message latency, microseconds.
    pub latency_us: f64,
}

/// Cost of one collective exchange.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommCost {
    /// Simulated wall-clock seconds the exchange occupies the step.
    pub seconds: f64,
    /// Total bytes crossing the (simulated) wire, all links summed.
    pub bytes: u64,
}

impl LinkProfile {
    /// Parameter-server exchange for one step: `world` workers each
    /// upload `grad_bytes` and download the aggregate, serialized on
    /// the server's link. A world of one pays nothing.
    pub fn parameter_server_step(&self, grad_bytes: u64, world: usize) -> CommCost {
        if world <= 1 {
            return CommCost::default();
        }
        let w = world as f64;
        let bytes = 2 * world as u64 * grad_bytes;
        let seconds = 2.0 * self.latency_s() + 2.0 * w * self.transfer_s(grad_bytes);
        CommCost { seconds, bytes }
    }

    /// Ring all-reduce exchange for one step: `2·(W−1)` phases over
    /// `1/W`-sized chunks, links in parallel. A world of one pays
    /// nothing.
    pub fn ring_step(&self, grad_bytes: u64, world: usize) -> CommCost {
        if world <= 1 {
            return CommCost::default();
        }
        let w = world as f64;
        let phases = 2.0 * (w - 1.0);
        let bytes = (2 * (world as u64 - 1)) * grad_bytes;
        let seconds = phases * self.latency_s() + (phases / w) * self.transfer_s(grad_bytes);
        CommCost { seconds, bytes }
    }

    fn latency_s(&self) -> f64 {
        self.latency_us * 1e-6
    }

    fn transfer_s(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// TensorFlow's distribution stack (gRPC over 10 GbE): good payload
/// throughput once a stream is hot, but protobuf framing and HTTP/2
/// bookkeeping tax every message.
pub fn grpc_10gbe() -> LinkProfile {
    LinkProfile { name: "gRPC / 10 GbE", bandwidth_gbs: 0.95, latency_us: 60.0 }
}

/// Caffe-style MPI transport (OpenMPI over 10 GbE): thin framing,
/// near-line-rate payloads, low per-message latency.
pub fn mpi_10gbe() -> LinkProfile {
    LinkProfile { name: "MPI / 10 GbE", bandwidth_gbs: 1.1, latency_us: 25.0 }
}

/// Torch7-era raw socket transport (Lua-driven TCP): the payload path
/// is plain sockets, but every message crosses the scripting boundary.
pub fn socket_10gbe() -> LinkProfile {
    LinkProfile { name: "sockets / 10 GbE", bandwidth_gbs: 1.0, latency_us: 90.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1_000_000;

    #[test]
    fn world_of_one_is_free() {
        let link = mpi_10gbe();
        assert_eq!(link.parameter_server_step(4 * MB, 1), CommCost::default());
        assert_eq!(link.ring_step(4 * MB, 1), CommCost::default());
    }

    #[test]
    fn ps_grows_linearly_ring_stays_flat() {
        let link = mpi_10gbe();
        let ps2 = link.parameter_server_step(4 * MB, 2).seconds;
        let ps8 = link.parameter_server_step(4 * MB, 8).seconds;
        assert!(ps8 > 3.0 * ps2, "PS must scale ~linearly: {ps2} vs {ps8}");
        let ring2 = link.ring_step(4 * MB, 2).seconds;
        let ring8 = link.ring_step(4 * MB, 8).seconds;
        // Ring bandwidth term approaches 2·grad/bw; only latency grows.
        assert!(ring8 < 2.0 * ring2, "ring must stay near-flat: {ring2} vs {ring8}");
    }

    #[test]
    fn ring_beats_ps_at_scale_for_large_gradients() {
        let link = grpc_10gbe();
        let ps = link.parameter_server_step(16 * MB, 8);
        let ring = link.ring_step(16 * MB, 8);
        assert!(ring.seconds < ps.seconds);
        assert!(ring.bytes < ps.bytes);
    }

    #[test]
    fn tiny_messages_are_latency_bound_so_ps_can_win() {
        // With a handful of bytes, ring's 2·(W−1) phases cost more than
        // the PS round trip — the small-model regime.
        let link = socket_10gbe();
        let ps = link.parameter_server_step(64, 8);
        let ring = link.ring_step(64, 8);
        assert!(ps.seconds < ring.seconds);
    }

    #[test]
    fn bytes_on_wire_match_the_schedules() {
        let link = mpi_10gbe();
        assert_eq!(link.parameter_server_step(10, 4).bytes, 2 * 4 * 10);
        assert_eq!(link.ring_step(10, 4).bytes, 2 * 3 * 10);
    }
}
