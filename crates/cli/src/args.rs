//! Minimal dependency-free argument parsing.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional operands, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// First non-flag token (the subcommand).
    pub command: String,
    /// Remaining non-flag tokens.
    pub positionals: Vec<String>,
    /// `--key value` pairs; bare flags map to `"true"`.
    pub options: HashMap<String, String>,
}

/// Option keys that are flags (take no value).
const FLAG_KEYS: &[&str] =
    &["bars", "json", "help", "quiet", "verify", "sweep", "no-rebalance", "force", "dry-run"];

/// Parses raw arguments (excluding `argv[0]`).
///
/// Grammar: `<command> [positional…] [--key value | --flag]…`.
pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
    let mut parsed = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if key.is_empty() {
                return Err("empty option name `--`".into());
            }
            if FLAG_KEYS.contains(&key) {
                parsed.options.insert(key.to_string(), "true".to_string());
            } else {
                let value =
                    iter.next().ok_or_else(|| format!("option --{key} requires a value"))?;
                parsed.options.insert(key.to_string(), value.clone());
            }
        } else if parsed.command.is_empty() {
            parsed.command = arg.clone();
        } else {
            parsed.positionals.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// Option value by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a flag is set.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }

    /// Parses an option as `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("invalid value for --{key}: {raw}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<ParsedArgs, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        parse(&args)
    }

    #[test]
    fn parses_command_positionals_options() {
        let p = parse_str("run fig_1 fig_2 --scale tiny --seed 7").unwrap();
        assert_eq!(p.command, "run");
        assert_eq!(p.positionals, vec!["fig_1", "fig_2"]);
        assert_eq!(p.get("scale"), Some("tiny"));
        assert_eq!(p.get_parsed::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn flags_take_no_value() {
        let p = parse_str("run fig_1 --bars --seed 3").unwrap();
        assert!(p.flag("bars"));
        assert_eq!(p.get_parsed::<u64>("seed", 0).unwrap(), 3);
        assert_eq!(p.positionals, vec!["fig_1"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse_str("run --scale").is_err());
    }

    #[test]
    fn invalid_numeric_value_is_an_error() {
        let p = parse_str("run --seed abc").unwrap();
        assert!(p.get_parsed::<u64>("seed", 0).is_err());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = parse_str("list").unwrap();
        assert_eq!(p.get_parsed::<u64>("seed", 42).unwrap(), 42);
        assert!(!p.flag("bars"));
        assert!(p.positionals.is_empty());
    }

    #[test]
    fn empty_input_is_empty_command() {
        let p = parse(&[]).unwrap();
        assert!(p.command.is_empty());
    }
}
