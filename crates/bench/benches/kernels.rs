//! Criterion micro-benchmarks of the tensor substrate: GEMM, im2col,
//! softmax and elementwise kernels — the primitives every framework
//! personality's cost is made of.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlbench_bench::BENCH_SEED;
use dlbench_tensor::{gemm, im2col, Conv2dGeometry, SeededRng, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let mut rng = SeededRng::new(BENCH_SEED);
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 128] {
        let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        group
            .bench_function(format!("{n}x{n}x{n}"), |bench| bench.iter(|| black_box(a.matmul(&b))));
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = SeededRng::new(BENCH_SEED);
    // Caffe LeNet conv1 geometry at native MNIST size.
    let geo = Conv2dGeometry {
        in_channels: 1,
        in_h: 28,
        in_w: 28,
        kernel_h: 5,
        kernel_w: 5,
        stride: 1,
        pad: 0,
    };
    let input = Tensor::randn(&[1, 28 * 28], 0.0, 1.0, &mut rng);
    let mut cols = vec![0.0f32; geo.patch_len() * geo.out_plane()];
    c.bench_function("im2col_lenet_conv1", |bench| {
        bench.iter(|| im2col(&geo, black_box(input.data()), black_box(&mut cols)))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = SeededRng::new(BENCH_SEED);
    let logits = Tensor::randn(&[100, 10], 0.0, 3.0, &mut rng);
    c.bench_function("softmax_rows_100x10", |bench| {
        bench.iter(|| black_box(&logits).softmax_rows())
    });
}

fn bench_gemm_raw(c: &mut Criterion) {
    let mut rng = SeededRng::new(BENCH_SEED);
    // The TF-MNIST fc1 shape: [batch 50] 3136 -> 1024.
    let a = Tensor::randn(&[50, 3136], 0.0, 1.0, &mut rng);
    let b = Tensor::randn(&[3136, 1024], 0.0, 0.1, &mut rng);
    let mut out = vec![0.0f32; 50 * 1024];
    c.bench_function("gemm_tf_mnist_fc1", |bench| {
        bench.iter(|| {
            out.iter_mut().for_each(|v| *v = 0.0);
            gemm(50, 3136, 1024, black_box(a.data()), black_box(b.data()), &mut out);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_im2col, bench_softmax, bench_gemm_raw
}
criterion_main!(benches);
