//! Spec-sweep harness: executes a declarative experiment spec through
//! the orchestrator's cell cache and reports the hit/miss split, so a
//! warm `target/dlbench-cache` shows the resume machinery paying off.
//!
//! ```sh
//! cargo bench --bench spec                                  # smoke spec
//! cargo bench --bench spec -- examples/specs/paper_tables.json
//! ```
//!
//! Results land in `target/dlbench-reports/BENCH_spec.json`; cells
//! persist under `target/dlbench-cache/` and are skipped on re-run.

use dlbench_core::spec::{self, ExperimentSpec, RunOptions};
use dlbench_trace::Stopwatch;

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("spec: bench");
        return;
    }
    // Bench binaries run with the package dir as cwd; anchor default
    // paths at the workspace root so invocations from anywhere agree.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| root.join("examples/specs/smoke.json").display().to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let plan = ExperimentSpec::parse(&text).and_then(|s| s.expand()).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    println!("spec `{}`: {} cell(s) planned", plan.name, plan.cells.len());

    let opts = RunOptions { cache_dir: root.join("target/dlbench-cache"), force: false };
    let watch = Stopwatch::start();
    let run = match spec::run_plan(&plan, &opts, None, None) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = watch.elapsed_s();

    for report in spec::aggregate_reports(&run) {
        println!("{}", report.render());
    }
    let out_dir = root.join("target").join("dlbench-reports");
    let _ = std::fs::create_dir_all(&out_dir);
    let out = out_dir.join("BENCH_spec.json");
    if let Err(e) = std::fs::write(&out, spec::document(&run).pretty() + "\n") {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("[spec results written to {}]", out.display());
    println!(
        "[{} cells in {elapsed:.2}s: {} executed, {} cache hits]",
        run.cells.len(),
        run.executed,
        run.cache_hits
    );
}
