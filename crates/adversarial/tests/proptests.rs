//! Property-based tests for attack invariants.

use dlbench_adversarial::{fgsm, jsma, pgd, FgsmConfig, JsmaConfig, PgdConfig};
use dlbench_nn::{Initializer, Linear, Network, Relu};
use dlbench_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

fn mlp(inputs: usize, classes: usize, rng: &mut SeededRng) -> Network {
    let mut net = Network::new("prop-mlp");
    net.push(Linear::new(inputs, 8, Initializer::Xavier, rng));
    net.push(Relu::new());
    net.push(Linear::new(8, classes, Initializer::Xavier, rng));
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fgsm_linf_bound_holds(
        inputs in 2usize..12, eps in 0.001f32..0.5, seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut net = mlp(inputs, 4, &mut rng);
        let x = Tensor::randn(&[1, inputs], 0.0, 1.0, &mut rng);
        let report = fgsm(&mut net, &x, 1, &FgsmConfig { epsilon: eps, clamp: None });
        for (a, b) in report.adversarial.data().iter().zip(x.data()) {
            prop_assert!((a - b).abs() <= eps + 1e-6);
        }
    }

    #[test]
    fn fgsm_with_clamp_stays_in_range(
        inputs in 2usize..12, eps in 0.1f32..2.0, seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut net = mlp(inputs, 4, &mut rng);
        let x = Tensor::rand_uniform(&[1, inputs], 0.0, 1.0, &mut rng);
        let report =
            fgsm(&mut net, &x, 0, &FgsmConfig { epsilon: eps, clamp: Some((0.0, 1.0)) });
        prop_assert!(report.adversarial.min() >= 0.0);
        prop_assert!(report.adversarial.max() <= 1.0);
    }

    #[test]
    fn fgsm_clamped_perturbation_still_within_eps_ball(
        inputs in 2usize..12, eps in 0.001f32..0.5, seed in 0u64..500,
    ) {
        // Clamping to the data range can only shrink a perturbation,
        // never grow it past the L-inf budget.
        let mut rng = SeededRng::new(seed);
        let mut net = mlp(inputs, 4, &mut rng);
        let x = Tensor::rand_uniform(&[1, inputs], 0.0, 1.0, &mut rng);
        let report =
            fgsm(&mut net, &x, 1, &FgsmConfig { epsilon: eps, clamp: Some((0.0, 1.0)) });
        for (a, b) in report.adversarial.data().iter().zip(x.data()) {
            prop_assert!((a - b).abs() <= eps + 1e-6);
        }
    }

    #[test]
    fn pgd_linf_bound_holds(
        inputs in 2usize..12, eps in 0.01f32..0.4, seed in 0u64..500,
    ) {
        // Every PGD iterate is projected back into the eps ball, so the
        // final adversarial example must respect the same L-inf budget.
        let mut rng = SeededRng::new(seed);
        let mut net = mlp(inputs, 4, &mut rng);
        let x = Tensor::rand_uniform(&[1, inputs], 0.0, 1.0, &mut rng);
        let config = PgdConfig::standard(eps);
        let report = pgd(&mut net, &x, 1, &config, &mut rng);
        for (a, b) in report.adversarial.data().iter().zip(x.data()) {
            prop_assert!((a - b).abs() <= eps + 1e-6);
        }
    }

    #[test]
    fn jsma_distortion_budget_enforced(
        inputs in 4usize..16, budget in 0.05f32..0.5, seed in 0u64..500,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut net = mlp(inputs, 4, &mut rng);
        let x = Tensor::rand_uniform(&[1, inputs], 0.0, 0.3, &mut rng);
        let pred = net.forward(&x, false).argmax_rows()[0];
        let target = (pred + 1) % 4;
        let config = JsmaConfig { theta: 0.2, max_distortion: budget, clamp: (0.0, 1.0) };
        let outcome = jsma(&mut net, &x, target, &config);
        let max_iters = ((inputs as f32) * budget).ceil() as usize;
        prop_assert!(outcome.iterations <= max_iters);
        let changed = outcome
            .adversarial
            .data()
            .iter()
            .zip(x.data())
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        prop_assert!(changed <= max_iters);
    }

    #[test]
    fn jsma_only_increases_features(inputs in 4usize..12, seed in 0u64..500) {
        // The saliency attack perturbs by +theta only.
        let mut rng = SeededRng::new(seed);
        let mut net = mlp(inputs, 3, &mut rng);
        let x = Tensor::rand_uniform(&[1, inputs], 0.0, 0.5, &mut rng);
        let pred = net.forward(&x, false).argmax_rows()[0];
        let outcome = jsma(&mut net, &x, (pred + 1) % 3, &JsmaConfig::default());
        for (a, b) in outcome.adversarial.data().iter().zip(x.data()) {
            prop_assert!(*a >= b - 1e-6, "feature decreased: {b} -> {a}");
        }
    }

    #[test]
    fn attacks_leave_weights_untouched(inputs in 2usize..10, seed in 0u64..300) {
        let mut rng = SeededRng::new(seed);
        let mut net = mlp(inputs, 4, &mut rng);
        let snapshot = net.snapshot();
        let x = Tensor::rand_uniform(&[1, inputs], 0.0, 1.0, &mut rng);
        fgsm(&mut net, &x, 0, &FgsmConfig { epsilon: 0.2, clamp: None });
        jsma(&mut net, &x, 2, &JsmaConfig::default());
        // Parameter values (not grads) must be unchanged.
        let after = net.snapshot();
        prop_assert_eq!(snapshot, after);
    }
}
