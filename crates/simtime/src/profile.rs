//! Per-framework execution profiles.

use crate::device::DeviceKind;

/// How a framework personality uses a device.
///
/// Efficiency factors multiply the device's effective throughput;
/// dispatch and host overheads add fixed per-kernel / per-iteration
/// latency. Together these encode the execution styles the paper
/// discusses: TensorFlow's batched dataflow graph, Caffe's layer-wise
/// C++ solver with LMDB data layers, and Torch7's eager per-op Lua
/// dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionProfile {
    /// Framework display name.
    pub name: &'static str,
    /// Fraction of CPU throughput this framework's kernels reach.
    pub cpu_efficiency: f64,
    /// Fraction of GPU throughput this framework's kernels reach.
    pub gpu_efficiency: f64,
    /// Host-side dispatch latency added per kernel, in microseconds
    /// (graph-interpreter / Lua overhead).
    pub dispatch_us: f64,
    /// Fixed host-side overhead per training iteration, in milliseconds
    /// (session management, solver bookkeeping, data layer).
    pub iter_overhead_ms: f64,
    /// Fixed host-side overhead per inference batch, in milliseconds.
    pub infer_overhead_ms: f64,
    /// CPU efficiency ramp with batch size: effective CPU efficiency is
    /// `cpu_efficiency * batch / (batch + cpu_batch_ramp)`. Zero means
    /// batch-independent. Models frameworks whose CPU kernels lose
    /// threading/vectorization utilization at small batches — the
    /// paper's Torch numbers imply a ~7x per-FLOP gap between its
    /// batch-10 MNIST and batch-1 CIFAR-10 configurations.
    pub cpu_batch_ramp: f64,
}

impl ExecutionProfile {
    /// Efficiency on the given device kind for a given batch size.
    pub fn efficiency(&self, kind: DeviceKind, batch: usize) -> f64 {
        match kind {
            DeviceKind::Cpu => {
                if self.cpu_batch_ramp == 0.0 {
                    self.cpu_efficiency
                } else {
                    let b = batch.max(1) as f64;
                    self.cpu_efficiency * b / (b + self.cpu_batch_ramp)
                }
            }
            DeviceKind::Gpu => self.gpu_efficiency,
        }
    }
}

/// TensorFlow 1.3 profile.
///
/// Calibration: Eigen-threaded CPU kernels reach ~75 GFLOP/s on the
/// Xeon preset (paper: TF-CPU CIFAR-10 ≈ 219 ms/iteration for a ≈13
/// GFLOP batch); graph execution batches kernel dispatch (5 µs) and the
/// session adds ~0.6 ms/iteration.
pub fn tensorflow() -> ExecutionProfile {
    ExecutionProfile {
        name: "TensorFlow",
        cpu_efficiency: 0.95,
        gpu_efficiency: 0.65,
        dispatch_us: 5.0,
        iter_overhead_ms: 0.6,
        infer_overhead_ms: 0.3,
        cpu_batch_ramp: 0.0,
    }
}

/// Caffe 1.0 profile.
///
/// Calibration: OpenBLAS CPU GEMMs reach ~20 GFLOP/s on the Xeon preset
/// (paper: Caffe-CPU CIFAR-10 ≈ 346 ms/iteration for a ≈7.5 GFLOP
/// batch); the LMDB data layer and solver bookkeeping dominate small
/// iterations at ~8 ms each (paper: Caffe-GPU MNIST ≈ 9.7 ms/iteration
/// although the batch computes in <1 ms).
pub fn caffe() -> ExecutionProfile {
    ExecutionProfile {
        name: "Caffe",
        cpu_efficiency: 0.20,
        gpu_efficiency: 0.20,
        dispatch_us: 2.0,
        iter_overhead_ms: 8.0,
        infer_overhead_ms: 4.0,
        cpu_batch_ramp: 0.0,
    }
}

/// Torch7 profile.
///
/// Calibration: default Torch CPU convolutions (SpatialConvolutionMap
/// and friends, largely single-threaded Lua-dispatched) reach ~1.4
/// GFLOP/s at batch 10 and ~0.2 GFLOP/s at batch 1 — the batch ramp fits
/// the paper's Torch-CPU MNIST (batch 10, ≈134 ms/iteration for ≈75
/// MFLOP) against Torch-CPU CIFAR-10 (batch 1, ≈383 ms/iteration for
/// ≈72 MFLOP). Eager per-op Lua dispatch costs ~25 µs/kernel,
/// ~3.5 ms/iteration and ~15 ms per evaluation batch.
pub fn torch() -> ExecutionProfile {
    ExecutionProfile {
        name: "Torch",
        cpu_efficiency: 0.0425,
        gpu_efficiency: 0.50,
        dispatch_us: 25.0,
        iter_overhead_ms: 3.5,
        infer_overhead_ms: 15.0,
        cpu_batch_ramp: 20.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torch_cpu_is_the_outlier() {
        let tf = tensorflow();
        let caffe = caffe();
        let torch = torch();
        // At its MNIST batch size of 10, Torch's CPU kernels are an
        // order of magnitude less efficient than Caffe's.
        assert!(
            torch.efficiency(DeviceKind::Cpu, 10) < 0.1 * caffe.efficiency(DeviceKind::Cpu, 10)
        );
        assert!(tf.cpu_efficiency > caffe.cpu_efficiency);
        // On GPU the kernels are all CUDA; efficiencies converge.
        assert!(torch.gpu_efficiency >= caffe.gpu_efficiency);
    }

    #[test]
    fn efficiency_selector() {
        let p = tensorflow();
        assert_eq!(p.efficiency(DeviceKind::Cpu, 50), 0.95);
        assert_eq!(p.efficiency(DeviceKind::Gpu, 50), 0.65);
    }

    #[test]
    fn torch_cpu_efficiency_ramps_with_batch() {
        let p = torch();
        let b1 = p.efficiency(DeviceKind::Cpu, 1);
        let b10 = p.efficiency(DeviceKind::Cpu, 10);
        // Paper-implied ratio between batch-10 MNIST and batch-1
        // CIFAR-10 per-FLOP throughput is ~7x.
        let ratio = b10 / b1;
        assert!(ratio > 5.0 && ratio < 9.0, "ratio {ratio}");
        // GPU efficiency is batch-independent in the model.
        assert_eq!(p.efficiency(DeviceKind::Gpu, 1), p.efficiency(DeviceKind::Gpu, 128));
    }

    #[test]
    fn caffe_iteration_overhead_dominates() {
        // The paper's Caffe-GPU MNIST iterations are ~10 ms despite tiny
        // compute; our profile encodes that via iter_overhead_ms.
        assert!(caffe().iter_overhead_ms > tensorflow().iter_overhead_ms * 5.0);
    }
}
