//! Hyperparameter sensitivity sweeps (paper §II's discussion of batch
//! size and learning-rate interactions), run as a plain harness: prints
//! accuracy/time tables for a batch-size sweep and a learning-rate
//! sweep of the Caffe-MNIST configuration.
//!
//! `cargo bench --bench sweeps`

use dlbench_data::{BatchIter, DatasetKind};
use dlbench_frameworks::{trainer, DefaultSetting, FrameworkKind, Scale};
use dlbench_nn::SoftmaxCrossEntropy;
use dlbench_optim::{LrPolicy, Optimizer, Sgd};
use dlbench_tensor::SeededRng;
use dlbench_trace::Stopwatch;

fn sweep(base_lr: f32, batch_size: usize, iters: usize, seed: u64) -> (f32, f64) {
    let host = FrameworkKind::Caffe;
    let setting = DefaultSetting::new(host, DatasetKind::Mnist);
    let scale = Scale::Tiny;
    let (train, test) = trainer::generate_data(DatasetKind::Mnist, scale, seed);
    let mut rng = SeededRng::new(seed).fork(1);
    let size = scale.image_size(DatasetKind::Mnist);
    let mut model = trainer::effective_arch(host, &setting).build(
        (1, size, size),
        scale.width_mult(),
        host.initializer(),
        &mut rng,
    );
    let mut opt = Sgd::new(base_lr, 0.9, 5e-4, LrPolicy::Fixed);
    let mut batches = BatchIter::new(&train, batch_size, rng.fork(2));
    let mut loss = SoftmaxCrossEntropy::new();
    let started = Stopwatch::start();
    for it in 0..iters {
        let (images, labels) = batches.next_batch();
        let logits = model.forward(&images, true);
        let (l, _) = loss.forward(&logits, &labels);
        if !l.is_finite() {
            return (f32::NAN, started.elapsed_s());
        }
        model.zero_grads();
        model.backward(&loss.backward());
        opt.step(&mut model.params(), it);
    }
    let wall = started.elapsed_s();
    let means = vec![];
    let acc = trainer::evaluate(&mut model, &test, dlbench_data::Preprocessing::Raw01, &means);
    (acc, wall)
}

fn main() {
    // Honour Criterion's CLI contract enough to be a bench target.
    if std::env::args().any(|a| a == "--list") {
        println!("sweeps: bench");
        return;
    }
    println!("Batch-size sweep (Caffe-MNIST config, lr 0.01, 200 iterations)\n");
    println!("{:>6} {:>10} {:>10}", "batch", "acc (%)", "wall (s)");
    for batch in [4usize, 16, 64, 128] {
        let (acc, wall) = sweep(0.01, batch, 200, 7);
        println!("{:>6} {:>10.1} {:>10.2}", batch, acc * 100.0, wall);
    }

    println!("\nLearning-rate sweep (Caffe-MNIST config, batch 64, 200 iterations)\n");
    println!("{:>8} {:>10}", "lr", "acc (%)");
    for lr in [0.0005f32, 0.005, 0.05, 0.5, 2.0] {
        let (acc, _) = sweep(lr, 64, 200, 7);
        if acc.is_nan() {
            println!("{:>8} {:>10}", lr, "DIVERGED");
        } else {
            println!("{:>8} {:>10.1}", lr, acc * 100.0);
        }
    }
    println!(
        "\nPaper shape: moderate rates learn fastest; overly large rates fluctuate or diverge \
         (§II: 'if the learning rate is too large, the training process may not be sophisticated \
         enough and may suffer from fluctuation')."
    );

    println!("\nRegularizer ablation (extension — de-confounded Table IX follow-up)\n");
    let report = dlbench_core::extensions::regularizer_robustness(Scale::Tiny, 7);
    println!("{}", report.render());
}
