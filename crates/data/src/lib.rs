//! # dlbench-data
//!
//! Dataset substrate for the DLBench suite: procedural, seed-deterministic
//! stand-ins for MNIST and CIFAR-10, plus the per-framework preprocessing
//! pipelines and the dataset-characterization statistics the benchmark
//! reports.
//!
//! The paper's datasets are gated (no network access in the reproduction
//! environment), so we substitute generators that preserve the properties
//! the paper's analysis leans on:
//!
//! * [`SynthMnist`] — sparse, grayscale, **low-entropy** glyph images
//!   (seven-segment-style digit skeletons with affine jitter and noise);
//!   easily learnable to ≥99% accuracy by LeNet-class models.
//! * [`SynthCifar10`] — color-rich, texture-rich, **high-entropy** images
//!   (class-specific palette × texture × shape composites with strong
//!   intra-class variation); separates model capacity and training-budget
//!   differences the way CIFAR-10 does in the paper.
//!
//! The text-workload axis adds [`DatasetKind::Imdb`]: token-id sequence
//! datasets built through the validating [`Dataset::sequences`]
//! constructor (the generator itself lives in `dlbench-text`).
//!
//! ## Example
//!
//! ```
//! use dlbench_data::SynthMnist;
//!
//! let data = SynthMnist::generate(128, 28, 42);
//! assert_eq!(data.images.shape(), &[128, 1, 28, 28]);
//! assert_eq!(data.labels.len(), 128);
//! assert!(data.stats().sparsity > 0.5, "MNIST-like data is mostly background");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cifar;
mod dataset;
mod mnist;
mod preprocess;
mod stats;

pub use batch::BatchIter;
pub use cifar::SynthCifar10;
pub use dataset::{Dataset, DatasetError, DatasetKind};
pub use mnist::SynthMnist;
pub use preprocess::Preprocessing;
pub use stats::DatasetStats;
