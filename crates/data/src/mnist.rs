//! Procedural MNIST stand-in: seven-segment-style digit glyphs.

use crate::dataset::{Dataset, DatasetKind};
use dlbench_tensor::{SeededRng, Tensor};

/// Generator for sparse grayscale digit images.
///
/// Each digit class is a fixed skeleton of line segments (a
/// seven-segment layout augmented with diagonals for visual
/// distinctiveness). Per-sample variation applies a random affine jitter
/// (translation, rotation, scale), stroke-width variation, and additive
/// Gaussian pixel noise, so classes overlap a little but remain easily
/// separable — matching MNIST's "low entropy, sparse, grayscale" profile
/// that the paper credits for the uniformly high accuracy of all three
/// frameworks.
pub struct SynthMnist;

/// One stroke: a line segment in normalized glyph coordinates.
type Segment = ((f32, f32), (f32, f32));

/// Segment endpoints in a unit box. Layout:
///
/// ```text
///   (0.25,0.15) --A-- (0.75,0.15)
///       |F                |B
///   (0.25,0.50) --G-- (0.75,0.50)
///       |E                |C
///   (0.25,0.85) --D-- (0.75,0.85)
/// ```
const SEG_A: Segment = ((0.25, 0.15), (0.75, 0.15));
const SEG_B: Segment = ((0.75, 0.15), (0.75, 0.50));
const SEG_C: Segment = ((0.75, 0.50), (0.75, 0.85));
const SEG_D: Segment = ((0.25, 0.85), (0.75, 0.85));
const SEG_E: Segment = ((0.25, 0.50), (0.25, 0.85));
const SEG_F: Segment = ((0.25, 0.15), (0.25, 0.50));
const SEG_G: Segment = ((0.25, 0.50), (0.75, 0.50));
/// Diagonal flourishes that make glyph classes more distinctive.
const SEG_SLASH: Segment = ((0.25, 0.85), (0.75, 0.15));
const SEG_TAIL: Segment = ((0.50, 0.50), (0.75, 0.85));

fn glyph_segments(digit: usize) -> Vec<Segment> {
    match digit {
        0 => vec![SEG_A, SEG_B, SEG_C, SEG_D, SEG_E, SEG_F],
        1 => vec![SEG_B, SEG_C],
        2 => vec![SEG_A, SEG_B, SEG_G, SEG_E, SEG_D],
        3 => vec![SEG_A, SEG_B, SEG_G, SEG_C, SEG_D],
        4 => vec![SEG_F, SEG_G, SEG_B, SEG_C],
        5 => vec![SEG_A, SEG_F, SEG_G, SEG_C, SEG_D],
        6 => vec![SEG_A, SEG_F, SEG_E, SEG_D, SEG_C, SEG_G],
        7 => vec![SEG_A, SEG_SLASH],
        8 => vec![SEG_A, SEG_B, SEG_C, SEG_D, SEG_E, SEG_F, SEG_G],
        9 => vec![SEG_A, SEG_B, SEG_F, SEG_G, SEG_TAIL],
        _ => panic!("digit out of range: {digit}"),
    }
}

/// Distance from point `(px, py)` to segment `seg`.
fn segment_distance(px: f32, py: f32, seg: &Segment) -> f32 {
    let ((x0, y0), (x1, y1)) = *seg;
    let (dx, dy) = (x1 - x0, y1 - y0);
    let len2 = dx * dx + dy * dy;
    let t =
        if len2 == 0.0 { 0.0 } else { (((px - x0) * dx + (py - y0) * dy) / len2).clamp(0.0, 1.0) };
    let (cx, cy) = (x0 + t * dx, y0 + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

impl SynthMnist {
    /// Generates `n` images of side length `size`, deterministically from
    /// `seed`. Labels are assigned round-robin then shuffled, so class
    /// balance is exact to within one sample.
    pub fn generate(n: usize, size: usize, seed: u64) -> Dataset {
        assert!(size >= 8, "glyphs need at least 8x8 pixels");
        let mut rng = SeededRng::new(seed).fork(0xD161);
        let mut labels: Vec<usize> = (0..n).map(|i| i % 10).collect();
        rng.shuffle(&mut labels);

        let mut data = vec![0.0f32; n * size * size];
        for (i, &digit) in labels.iter().enumerate() {
            let mut sample_rng = rng.fork(i as u64 + 1);
            Self::render_glyph(
                digit,
                size,
                &mut sample_rng,
                &mut data[i * size * size..(i + 1) * size * size],
            );
        }
        let images =
            Tensor::from_vec(&[n, 1, size, size], data).expect("generated data is consistent");
        Dataset { kind: DatasetKind::Mnist, images, labels, num_classes: 10 }
    }

    fn render_glyph(digit: usize, size: usize, rng: &mut SeededRng, out: &mut [f32]) {
        let segments = glyph_segments(digit);
        // Affine jitter: translate +-8%, rotate +-0.15 rad, scale +-12%.
        let tx = rng.uniform(-0.08, 0.08);
        let ty = rng.uniform(-0.08, 0.08);
        let theta = rng.uniform(-0.15, 0.15);
        let scale = rng.uniform(0.88, 1.12);
        let thickness = rng.uniform(0.045, 0.075);
        let noise_std = 0.04;
        let (sin_t, cos_t) = theta.sin_cos();

        for y in 0..size {
            for x in 0..size {
                // Pixel centre in glyph coordinates, inverse affine.
                let u = (x as f32 + 0.5) / size as f32 - 0.5;
                let v = (y as f32 + 0.5) / size as f32 - 0.5;
                // Inverse rotate and scale about the image centre.
                let ru = (cos_t * u + sin_t * v) / scale + 0.5 - tx;
                let rv = (-sin_t * u + cos_t * v) / scale + 0.5 - ty;
                let d = segments
                    .iter()
                    .map(|s| segment_distance(ru, rv, s))
                    .fold(f32::INFINITY, f32::min);
                // Smooth stroke falloff: 1 inside, ramp to 0 over one
                // thickness width.
                let intensity = (1.0 - ((d - thickness) / thickness).max(0.0)).clamp(0.0, 1.0);
                let noisy = intensity + rng.normal(0.0, noise_std);
                out[y * size + x] = noisy.clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = SynthMnist::generate(16, 16, 7);
        let b = SynthMnist::generate(16, 16, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = SynthMnist::generate(16, 16, 8);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn class_balance_exact() {
        let d = SynthMnist::generate(100, 12, 1);
        for class in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == class).count(), 10);
        }
    }

    #[test]
    fn images_in_unit_range_and_sparse() {
        let d = SynthMnist::generate(50, 28, 2);
        assert!(d.images.min() >= 0.0);
        assert!(d.images.max() <= 1.0);
        // MNIST is ~80% background; our glyphs similar.
        assert!(d.images.sparsity(0.1) > 0.5, "sparsity {}", d.images.sparsity(0.1));
    }

    #[test]
    fn distinct_classes_have_distinct_mean_images() {
        let d = SynthMnist::generate(200, 16, 3);
        let size = 16 * 16;
        let mean_image = |class: usize| -> Vec<f32> {
            let idxs: Vec<usize> = (0..d.len()).filter(|&i| d.labels[i] == class).collect();
            let mut acc = vec![0.0f32; size];
            for &i in &idxs {
                for (a, &v) in acc.iter_mut().zip(&d.images.data()[i * size..(i + 1) * size]) {
                    *a += v;
                }
            }
            acc.iter().map(|a| a / idxs.len() as f32).collect()
        };
        let m1 = mean_image(1);
        let m8 = mean_image(8);
        let dist: f32 = m1.iter().zip(&m8).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        assert!(dist > 1.0, "digit 1 and 8 prototypes should differ, dist {dist}");
    }

    #[test]
    fn segment_distance_basics() {
        let seg = ((0.0f32, 0.0f32), (1.0f32, 0.0f32));
        assert!(segment_distance(0.5, 0.0, &seg) < 1e-6);
        assert!((segment_distance(0.5, 0.3, &seg) - 0.3).abs() < 1e-6);
        assert!((segment_distance(2.0, 0.0, &seg) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "digit out of range")]
    fn glyph_rejects_bad_digit() {
        glyph_segments(10);
    }
}
