//! Canonical batch sharding.
//!
//! Bit-identical scaling hinges on one invariant: the decomposition of a
//! global batch into gradient *shards* depends only on the batch — never
//! on the world size, worker liveness or load-balancing weights. Every
//! world size computes the same shard set and reduces it in the same
//! fixed order; which worker happens to *execute* a shard affects only
//! simulated time. Straggler rebalancing and failure recovery then move
//! shards between workers without perturbing a single bit of arithmetic.

use std::collections::BTreeMap;

/// Number of canonical shards a full-size batch is cut into. Capped so
/// the fixed-order reduction tree stays shallow and shard batches stay
/// large enough for the GEMM kernels to amortize.
pub const MAX_SHARDS: usize = 8;

/// One canonical gradient shard: a contiguous slice of the global
/// batch's sample indices, tagged with its position in the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard within the batch's canonical decomposition
    /// (the reduction key).
    pub id: usize,
    /// Dataset indices of the samples in this shard, in batch order.
    pub indices: Vec<usize>,
}

/// Cuts one global batch into its canonical shards.
///
/// A batch of `n` samples yields `min(n, MAX_SHARDS)` shards; the first
/// `n % s` shards carry one extra sample. The decomposition is a pure
/// function of the index list, so every world size (including 1) agrees
/// on it exactly.
///
/// # Panics
///
/// Panics on an empty batch — the batch iterator never yields one.
pub fn shard_batch(indices: &[usize]) -> Vec<Shard> {
    let n = indices.len();
    assert!(n > 0, "cannot shard an empty batch");
    let s = n.min(MAX_SHARDS);
    let base = n / s;
    let extra = n % s;
    let mut shards = Vec::with_capacity(s);
    let mut at = 0;
    for id in 0..s {
        let take = base + usize::from(id < extra);
        shards.push(Shard { id, indices: indices[at..at + take].to_vec() });
        at += take;
    }
    debug_assert_eq!(at, n);
    shards
}

/// Assigns shards to live workers by weighted greedy load balancing:
/// shards are placed in id order onto the worker whose *weighted* load
/// (assigned samples divided by throughput weight) would stay smallest,
/// with the lowest rank breaking ties. Deterministic for a given
/// `(shards, live, weights)` input; the output order groups shards per
/// rank, sorted by rank.
///
/// `weights[i]` is the relative throughput of `live[i]` (1.0 = nominal;
/// a detected straggler gets less and therefore fewer samples).
///
/// # Panics
///
/// Panics if `live` is empty or `weights` is not parallel to `live`.
pub fn assign_shards(
    shards: Vec<Shard>,
    live: &[usize],
    weights: &[f64],
) -> BTreeMap<usize, Vec<Shard>> {
    assert!(!live.is_empty(), "cannot assign shards with no live workers");
    assert_eq!(live.len(), weights.len(), "one weight per live worker");
    let mut loads = vec![0.0f64; live.len()];
    let mut out: BTreeMap<usize, Vec<Shard>> = BTreeMap::new();
    for shard in shards {
        let size = shard.indices.len() as f64;
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for (i, &load) in loads.iter().enumerate() {
            let w = weights[i].max(1e-6);
            let score = (load + size) / w;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        loads[best] += size;
        out.entry(live[best]).or_default().push(shard);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_independent_of_world_size_inputs() {
        // shard_batch takes only the batch — this test documents that the
        // signature admits no world-size influence and that the split is
        // stable.
        let idx: Vec<usize> = (100..119).collect();
        let a = shard_batch(&idx);
        let b = shard_batch(&idx);
        assert_eq!(a, b);
        assert_eq!(a.len(), MAX_SHARDS);
        let total: usize = a.iter().map(|s| s.indices.len()).sum();
        assert_eq!(total, idx.len());
        // Contiguous, order-preserving cover.
        let flat: Vec<usize> = a.iter().flat_map(|s| s.indices.iter().copied()).collect();
        assert_eq!(flat, idx);
    }

    #[test]
    fn small_batches_get_one_shard_per_sample() {
        let idx = [7usize, 9, 11];
        let shards = shard_batch(&idx);
        assert_eq!(shards.len(), 3);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.id, i);
            assert_eq!(s.indices, vec![idx[i]]);
        }
    }

    #[test]
    fn remainder_spreads_over_leading_shards() {
        let idx: Vec<usize> = (0..10).collect();
        let shards = shard_batch(&idx);
        let sizes: Vec<usize> = shards.iter().map(|s| s.indices.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn assignment_balances_equal_weights() {
        let shards = shard_batch(&(0..16).collect::<Vec<_>>());
        let live = [0usize, 1, 2, 3];
        let map = assign_shards(shards, &live, &[1.0; 4]);
        for rank in live {
            let samples: usize = map[&rank].iter().map(|s| s.indices.len()).sum();
            assert_eq!(samples, 4, "rank {rank} should get a quarter of the batch");
        }
    }

    #[test]
    fn assignment_starves_a_weighted_down_straggler() {
        let shards = shard_batch(&(0..32).collect::<Vec<_>>());
        let live = [0usize, 1];
        let map = assign_shards(shards, &live, &[1.0, 0.25]);
        let fast: usize = map[&0].iter().map(|s| s.indices.len()).sum();
        let slow: usize = map.get(&1).map_or(0, |v| v.iter().map(|s| s.indices.len()).sum());
        assert!(fast > slow, "4x-slower worker must get less work: {fast} vs {slow}");
    }

    #[test]
    fn assignment_is_deterministic_and_rank_sorted() {
        let mk = || shard_batch(&(0..24).collect::<Vec<_>>());
        let a = assign_shards(mk(), &[3, 1, 5], &[1.0, 1.0, 1.0]);
        let b = assign_shards(mk(), &[3, 1, 5], &[1.0, 1.0, 1.0]);
        assert_eq!(a, b);
        let ranks: Vec<usize> = a.keys().copied().collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted);
    }

    #[test]
    fn union_of_assignment_is_the_shard_set() {
        let shards = shard_batch(&(0..23).collect::<Vec<_>>());
        let expect: Vec<usize> = shards.iter().map(|s| s.id).collect();
        let map = assign_shards(shards, &[0, 1, 2], &[1.0, 0.5, 1.0]);
        let mut got: Vec<usize> = map.values().flatten().map(|s| s.id).collect();
        got.sort_unstable();
        assert_eq!(got, expect);
    }
}
