//! `dlbench` — command-line interface for the DLBench suite.
//!
//! ```text
//! dlbench list                                   # experiments in the registry
//! dlbench info                                   # framework metadata (Table I)
//! dlbench run fig_1 table_viii --scale tiny      # regenerate paper artifacts
//! dlbench train --framework caffe --dataset mnist --save model.ckpt
//! dlbench attack --attack pgd --framework tf --epsilon 0.2
//! dlbench stats --dataset cifar10 --size 32
//! ```

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
dlbench — benchmarking deep learning framework personalities

USAGE:
    dlbench <command> [args] [--options]

COMMANDS:
    list                          list the experiment registry
    info                          framework metadata (paper Table I)
    run <experiment>…             regenerate paper tables/figures
                                  [--scale tiny|small|paper] [--seed N]
                                  [--bars] [--json] [--out DIR]
                                  [--threads N] [--verify]
                                  [--trace FILE]  (Chrome trace of the
                                  whole run; also on train and serve)
    run-spec <file.json>          execute a declarative experiment spec:
                                  the spec's axes expand into a grid of
                                  train/dist/serve/fleet cells, keyed by
                                  a content hash; finished cells persist
                                  under --cache-dir and are skipped on
                                  re-run, so interrupted sweeps resume
                                  [--cache-dir DIR] [--out FILE]
                                  [--threads N] [--force] [--dry-run]
                                  [--bars] [--trace FILE]
                                  (spec grammar: DESIGN.md §11;
                                  examples under examples/specs/)
    train                         train one benchmark cell
                                  [--framework tf|caffe|torch]
                                  [--dataset mnist|cifar10]
                                  [--setting-owner tf|caffe|torch]
                                  [--setting-dataset mnist|cifar10]
                                  [--scale …] [--seed N] [--save FILE]
                                  [--load FILE]  (warm-start checkpoint)
                                  [--checkpoint-every N]  (roll a
                                  checkpoint into --save FILE every N
                                  epochs; resume with --load)
    quantize                      post-training int8 quantization of one
                                  cell: calibrates activation ranges on
                                  a held-out shard, reports per-layer
                                  calibration stats, the fp32->int8
                                  accuracy drop and the modeled
                                  testing-time speedup
                                  [--framework …] [--dataset …]
                                  [--setting-owner …] [--setting-dataset …]
                                  [--scale …] [--seed N]
                                  [--load FILE]  (fp32 v1 or quantized
                                  v2 checkpoint; trains fresh if absent)
                                  [--save FILE]  (write v2 quantized
                                  checkpoint for serve/fleet)
                                  [--calib-samples N] [--percentile P]
                                  [--momentum M] [--threads N]
    dist-train                    simulated data-parallel training
                                  [--workers N] [--strategy ps|ring]
                                  [--framework …] [--dataset …]
                                  [--scale …] [--seed N] [--max-steps N]
                                  [--kill W:STEP[,…]]
                                  [--straggle W:FACTOR[:FROM][,…]]
                                  [--no-rebalance] [--save FILE]
                                  [--bars] [--json] [--trace FILE]
                                  or: --sweep [--workers 1,2,4,8]
                                  [--strategy ps,ring] [--out FILE]
                                  (BENCH_dist.json scaling curves)
    attack                        attack a trained cell
                                  [--attack fgsm|pgd|jsma|noise]
                                  [--framework …] [--epsilon X] [--seed N]
                                  [--load FILE]  (skip training, attack
                                  the checkpointed model)
    serve                         serve models over HTTP with dynamic
                                  micro-batching
                                  [NAME=FRAMEWORK:DATASET[:CKPT]]…
                                  [--framework …] [--dataset …]
                                  [--load FILE] [--name NAME]
                                  [--port N] [--max-batch N]
                                  [--batch-wait-ms N] [--queue N]
                                  [--quantize fp32|int8]  (int8 serves
                                  the post-training-quantized model;
                                  v1 checkpoints quantize on load, v2
                                  quantized checkpoints adopt bits)
                                  [--scale …] [--seed N] [--threads N]
    loadgen                       drive predict load at a serve instance
                                  --url HOST:PORT [--model NAME]
                                  [--mode closed|open] [--requests N]
                                  [--concurrency N] [--rate RPS]
                                  [--dataset …] [--scale …] [--seed N]
                                  or: --sweep [--deadlines-ms 0,1,2,5]
                                  [--out FILE] (BENCH_serve.json rows)
    fleet                         multi-replica serving fleet with live
                                  train->serve checkpoint promotion:
                                  replicas serve under concurrent load
                                  while dist-train streams epoch
                                  checkpoints through the health gate
                                  and hot-swaps them in (zero drops)
                                  [--replicas N] [--routing rr|
                                  least-queue|batch-aware]
                                  [--target-p99-ms X]
                                  [--concurrency N] [--promote-every N]
                                  [--workers N] [--max-steps N]
                                  [--framework …] [--dataset …]
                                  [--scale …] [--seed N]
                                  [--max-batch N] [--batch-wait-ms N]
                                  [--queue N] [--quantize fp32|int8]
                                  [--trace FILE]
                                  or: --sweep through the simtime fleet
                                  simulator (open-loop heavy-tailed
                                  arrivals at planet-scale rates)
                                  [--rates RPS,…] [--requests N]
                                  [--autoscale both|on|off] [--out FILE]
                                  (BENCH_fleet.json; byte-identical
                                  across runs)
    profile                       trace one training run per framework
                                  personality and report per-op time,
                                  achieved GFLOP/s and efficiency
                                  [--dataset …] [--scale …] [--seed N]
                                  [--threads N] [--json] [--out DIR]
                                  [--trace FILE]  (Chrome trace path,
                                  default target/dlbench-reports/
                                  TRACE_profile.json)
    stats                         dataset characterization statistics
                                  [--dataset …] [--size N] [--samples N]
    ablate                        regularizer-robustness ablation (extension)
                                  [--scale …] [--seed N]
    help                          this message

THREADING:
    --threads N (or DLBENCH_THREADS=N) sets the worker count for
    training and kernel execution. Results are bit-identical at any
    thread count; only wall-clock time changes. Default: machine
    parallelism.

VERIFICATION:
    run --verify installs the invariant guard: after every training
    epoch the loss, parameters and gradients are checked for NaN/Inf
    and shape drift; violations are recorded in the report and fail
    the run. DLBENCH_BLESS=1 (with --verify) additionally re-blesses
    the golden reports under tests/goldens/ at scale Tiny, seed 42.
    DLBENCH_BLESS=1 without --verify is an error.
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.command.is_empty() || parsed.command == "help" || parsed.flag("help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match parsed.command.as_str() {
        "list" => commands::list(),
        "info" => commands::info(),
        "run" => commands::run(&parsed),
        "run-spec" => commands::run_spec(&parsed),
        "train" => commands::train(&parsed),
        "quantize" => commands::quantize(&parsed),
        "dist-train" => commands::dist_train(&parsed),
        "attack" => commands::attack(&parsed),
        "stats" => commands::stats(&parsed),
        "ablate" => commands::ablate(&parsed),
        "serve" => commands::serve(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "fleet" => commands::fleet(&parsed),
        "profile" => commands::profile(&parsed),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
