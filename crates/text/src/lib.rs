//! # dlbench-text
//!
//! The text-workload axis of the DLBench suite: a procedural,
//! seed-deterministic stand-in for the IMDB sentiment-classification
//! dataset, producing fixed-length token-id sequences for the
//! sentence-CNN models (`dlbench_nn::{Embedding, Conv1dBank}`).
//!
//! The real IMDB corpus is gated (no network access in the
//! reproduction environment), so [`SynthImdb`] substitutes a generator
//! that preserves what the benchmark's analysis leans on:
//!
//! * **Class-conditional token distributions** — each sentiment class
//!   draws its content words from a skewed distribution anchored at the
//!   opposite end of the vocabulary, with heavy-tailed overlap in the
//!   middle, so sentiment is *learnable* from token statistics but not
//!   *trivial* (a bag-of-first-token rule does not solve it).
//! * **Shared stop-words** — a class-neutral high-frequency band
//!   occupies roughly 40% of every sequence, mirroring natural text's
//!   function-word mass and forcing models to pool over positions.
//! * **Determinism** — sampling is SplitMix64-seeded per sample;
//!   `generate(n, len, seed)` is byte-identical across runs, platforms
//!   and thread counts.
//!
//! ## Example
//!
//! ```
//! use dlbench_text::{SynthImdb, VOCAB};
//!
//! let data = SynthImdb::generate(64, 32, 42);
//! assert_eq!(data.images.shape(), &[64, 1, 32, 1]);
//! assert_eq!(data.num_classes, 2);
//! assert!(data.images.data().iter().all(|&t| (t as usize) < VOCAB));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dlbench_data::{Dataset, DatasetKind};
use dlbench_tensor::{SeededRng, Tensor};

/// Vocabulary size: ids `[0, STOP_WORDS)` are shared stop-words, the
/// rest are content words with class-conditional frequencies. The
/// embedding tables in `frameworks::defaults` are sized against this.
pub const VOCAB: usize = 1000;

/// Number of class-neutral stop-word ids at the bottom of the
/// vocabulary.
pub const STOP_WORDS: usize = 64;

/// Fraction of sequence positions occupied by stop-words (in
/// expectation).
const STOP_RATE: f32 = 0.4;

/// Per-token probability of drawing from the *other* class's content
/// distribution — word-level noise that keeps the task non-trivial.
const FLIP_RATE: f32 = 0.1;

/// Skew exponent for content-word sampling: `rank = floor(C * u^SKEW)`
/// concentrates mass on each class's anchor end of the vocabulary
/// (a cheap deterministic stand-in for a Zipf draw).
const SKEW: f32 = 3.0;

/// Generator for synthetic IMDB-like sentiment sequences.
pub struct SynthImdb;

impl SynthImdb {
    /// Generates `n` sequences of `len` token ids, deterministically
    /// from `seed`. Labels (0 = negative, 1 = positive) are assigned
    /// round-robin then shuffled, so class balance is exact to within
    /// one sample. Output samples are `[n, 1, len, 1]` token ids stored
    /// as `f32`, validated through [`Dataset::sequences`].
    pub fn generate(n: usize, len: usize, seed: u64) -> Dataset {
        assert!(len >= 4, "sequences need at least 4 tokens");
        let mut rng = SeededRng::new(seed).fork(0x1DB0);
        let mut labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        rng.shuffle(&mut labels);

        let mut data = vec![0.0f32; n * len];
        for (i, &label) in labels.iter().enumerate() {
            let mut sample_rng = rng.fork(i as u64 + 1);
            for slot in data[i * len..(i + 1) * len].iter_mut() {
                *slot = sample_token(label, &mut sample_rng) as f32;
            }
        }
        let tokens = Tensor::from_vec(&[n, 1, len, 1], data).expect("generated data matches shape");
        Dataset::sequences(DatasetKind::Imdb, tokens, labels, 2, VOCAB)
            .expect("generator emits only valid token ids")
    }
}

/// Draws one token id for a sample of the given class.
fn sample_token(label: usize, rng: &mut SeededRng) -> usize {
    if rng.bernoulli(STOP_RATE) {
        // Stop-words are themselves skewed (frequent function words),
        // identically for both classes.
        let u = rng.uniform(0.0, 1.0);
        return skewed_rank(u, STOP_WORDS);
    }
    // Word-level noise: occasionally speak with the other class's
    // vocabulary so single tokens are not fully diagnostic.
    let effective = if rng.bernoulli(FLIP_RATE) { 1 - label } else { label };
    let content = VOCAB - STOP_WORDS;
    let u = rng.uniform(0.0, 1.0);
    let rank = skewed_rank(u, content);
    // Class 1 anchors at the low end of the content band, class 0 at
    // the high end; the heavy tails overlap in the middle.
    if effective == 1 {
        STOP_WORDS + rank
    } else {
        VOCAB - 1 - rank
    }
}

/// Maps a uniform draw to a rank in `[0, n)` with mass concentrated at
/// low ranks.
fn skewed_rank(u: f32, n: usize) -> usize {
    ((u.clamp(0.0, 1.0).powf(SKEW) * n as f32) as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_identical_across_runs() {
        let a = SynthImdb::generate(50, 24, 7);
        let b = SynthImdb::generate(50, 24, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = SynthImdb::generate(50, 24, 8);
        assert_ne!(a.images, c.images, "different seeds differ");
    }

    #[test]
    fn shapes_and_balance() {
        let d = SynthImdb::generate(101, 16, 3);
        assert_eq!(d.images.shape(), &[101, 1, 16, 1]);
        assert_eq!(d.kind, DatasetKind::Imdb);
        assert_eq!(d.num_classes, 2);
        let ones = d.labels.iter().filter(|&&l| l == 1).count();
        assert!((ones as i64 - 50).abs() <= 1, "balance within one sample: {ones}");
    }

    #[test]
    fn all_tokens_in_vocabulary() {
        let d = SynthImdb::generate(40, 32, 11);
        for &t in d.images.data() {
            assert!(t >= 0.0 && (t as usize) < VOCAB && t.fract() == 0.0);
        }
    }

    #[test]
    fn stop_words_are_shared_and_frequent() {
        let d = SynthImdb::generate(200, 64, 5);
        let mut stop = [0usize; 2];
        let mut total = [0usize; 2];
        for (i, &label) in d.labels.iter().enumerate() {
            for &t in &d.images.data()[i * 64..(i + 1) * 64] {
                total[label] += 1;
                if (t as usize) < STOP_WORDS {
                    stop[label] += 1;
                }
            }
        }
        for c in 0..2 {
            let rate = stop[c] as f32 / total[c] as f32;
            assert!((0.3..0.5).contains(&rate), "class {c} stop rate {rate}");
        }
    }

    #[test]
    fn sentiment_is_learnable_but_not_trivial() {
        // A simple hand-built rule — average signed distance of content
        // tokens from the vocabulary midpoint — should classify well
        // above chance (learnable) but stay below perfection (the
        // overlapping tails and word-level noise keep it non-trivial).
        let len = 64;
        let d = SynthImdb::generate(400, len, 9);
        let mid = (STOP_WORDS + VOCAB) as f32 / 2.0;
        let mut correct = 0;
        for (i, &label) in d.labels.iter().enumerate() {
            let mut score = 0.0f32;
            for &t in &d.images.data()[i * len..(i + 1) * len] {
                if (t as usize) >= STOP_WORDS {
                    score += mid - t; // low content ids → positive class
                }
            }
            let pred = usize::from(score > 0.0);
            correct += usize::from(pred == label);
        }
        let acc = correct as f32 / 400.0;
        assert!(acc > 0.9, "midpoint rule should work well: {acc}");

        // Single-token rule (first content token) must NOT solve it.
        let mut first_correct = 0;
        for (i, &label) in d.labels.iter().enumerate() {
            let first = d.images.data()[i * len..(i + 1) * len]
                .iter()
                .find(|&&t| (t as usize) >= STOP_WORDS);
            let pred = match first {
                Some(&t) => usize::from(t < mid),
                None => 0,
            };
            first_correct += usize::from(pred == label);
        }
        let first_acc = first_correct as f32 / 400.0;
        assert!(first_acc < 0.99, "one token must not be fully diagnostic: {first_acc}");
    }
}
